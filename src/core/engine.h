#ifndef DIGEST_CORE_ENGINE_H_
#define DIGEST_CORE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"
#include "core/extrapolator.h"
#include "core/query_spec.h"
#include "core/supervisor.h"
#include "db/size_oracle.h"
#include "core/snapshot_estimator.h"
#include "db/p2p_database.h"
#include "net/fault_plan.h"
#include "net/graph.h"
#include "net/message_meter.h"
#include "numeric/rng.h"
#include "sampling/sampling_operator.h"
#include "sampling/size_estimator.h"
#include "sampling/tuple_sampler.h"

namespace digest {
namespace audit {
class PrecisionAuditor;
}  // namespace audit
namespace diag {
class SamplerDiag;
}  // namespace diag
namespace obs {
class Registry;
class Tracer;
}  // namespace obs
namespace prof {
class Profiler;
}  // namespace prof

class PeerHealthMonitor;

/// Snapshot scheduling policy: ALL executes a snapshot query at every
/// tick; PRED uses the extrapolation algorithm (§IV-A) to skip ticks the
/// aggregate cannot have drifted δ in.
enum class SchedulerKind { kAll, kPred };

/// Snapshot evaluation policy: classical independent sampling (INDEP,
/// §IV-B1) or repeated sampling with regression estimation (RPT,
/// §IV-B2).
enum class EstimatorKind { kIndependent, kRepeated };

/// Where fresh samples come from: the distributed two-stage MCMC sampler
/// (the system under study) or a centralized exact sampler (fast oracle
/// for tests and sample-count-only experiments).
enum class SamplerKind { kTwoStageMcmc, kExactCentral };

/// Where the relation cardinality N (needed by SUM/COUNT) comes from:
/// a ground-truth oracle (simulation default) or the fully distributed
/// collision-based random-walk estimator (see sampling/size_estimator.h).
enum class SizeOracleKind { kExact, kSampled };

/// How X̂[t] is presented between sampling occasions (§II: "X̂[t] can be
/// estimated without update/re-evaluation, e.g., by holding or
/// interpolation"). kHold repeats X̂[t_u]; kExtrapolate evaluates the
/// fitted Taylor polynomial at t (costs nothing — the fit exists for
/// scheduling anyway). Presentation only: update semantics (δ) and all
/// efficiency counters are identical in both modes.
enum class ReportMode { kHold, kExtrapolate };

/// Full engine configuration. Digest proper is {kPred, kRepeated,
/// kTwoStageMcmc}; the paper's comparison grid varies the first two.
struct DigestEngineOptions {
  SchedulerKind scheduler = SchedulerKind::kPred;
  EstimatorKind estimator = EstimatorKind::kRepeated;
  SamplerKind sampler = SamplerKind::kTwoStageMcmc;
  SizeOracleKind size_oracle = SizeOracleKind::kExact;
  ReportMode report_mode = ReportMode::kHold;
  ExtrapolatorOptions extrapolator;
  EstimatorOptions estimator_options;
  SamplingOperatorOptions sampling_options;
  SizeEstimatorOptions size_estimator_options;  ///< For kSampled oracle.
  /// Session-health state machine thresholds (core/supervisor.h). The
  /// supervisor is a pure observer folded over snapshot outcomes; it
  /// never influences scheduling or estimation.
  SupervisorOptions supervisor;

  /// Worker threads for the sampling tier's walk batches. 0 (default)
  /// keeps the legacy serial execution; any value >= 1 selects the
  /// deterministic parallel mode, whose outputs are bit-identical for
  /// EVERY num_threads >= 1 (see SamplingOperatorOptions::num_threads).
  /// A non-zero value is copied into sampling_options.num_threads for
  /// every operator the engine builds; checkpoints taken at one thread
  /// count restore and replay bit-identically at any other.
  size_t num_threads = 0;

  /// How PRED measures the predicted δ-drift (Eq. 4).
  ///
  /// false (paper-faithful default): drift is measured from the fitted
  /// value at the most recent snapshot — the paper's idealized reading,
  /// which assumes each predicted crossing materializes. Cheapest, but
  /// when the aggregate hovers near the threshold (or the fit flattens
  /// under estimate noise), detection of a crossing can lag by several
  /// prediction gaps.
  ///
  /// true (strict): drift is measured from the *running result* X̂[t_u],
  /// so drift accumulated across non-updating snapshots counts toward δ,
  /// and after a snapshot that did not confirm a crossing the next gap
  /// never exceeds the previous one. Tighter resolution at the cost of
  /// more snapshots near crossings. See DESIGN.md (ablations) and
  /// bench_fig4a --strict.
  bool strict_resolution = false;

  /// Optional fault-injection plan (not owned; must outlive the engine).
  /// Wired into the sampling operators the engine creates, so walks run
  /// under the plan's message loss / stalls / drops and the engine
  /// degrades gracefully when sampling times out. Callers passing a
  /// shared operator via CreateWithOperator attach the plan to that
  /// operator themselves.
  FaultPlan* fault_plan = nullptr;

  /// Optional structured event tracer (not owned; must outlive the
  /// engine; null disables). Create forwards it into the estimator and
  /// the operators it builds, so one sink receives the whole stack's
  /// events: per-tick TickEvents, PRED gap predictions, snapshot
  /// execute/skip, sample-budget plans, CI widening, walk-batch
  /// lifecycle. The engine drives the tracer's simulated clock
  /// (set_now per Tick). Pure observation — estimates, RNG streams, and
  /// MessageMeter totals are bit-identical with or without a tracer.
  obs::Tracer* tracer = nullptr;

  /// Optional metrics registry (not owned; null disables). Receives the
  /// sampler's histograms/counters plus per-snapshot sample-count and
  /// ρ̂ instruments from the engine. Same purity contract as `tracer`.
  obs::Registry* registry = nullptr;

  /// Optional wall-clock profiler (not owned; null disables — the null
  /// fast path performs no clock reads at all). Unlike `tracer` and
  /// `registry` this records *real* time, kept strictly out of the
  /// deterministic trace: scoped timers cover Tick, PRED fit/predict,
  /// snapshot estimation, and (through the operators Create builds)
  /// walk batches and stepping. Same purity contract: estimates, RNG
  /// streams, and meter totals are bit-identical with or without one.
  prof::Profiler* profiler = nullptr;

  /// Optional precision auditor (not owned; null disables). The engine
  /// feeds it one observation per tick — RecordSnapshot on sampling
  /// occasions, RecordTimeout on hold-under-fault ticks, RecordSkip on
  /// PRED-skipped ticks — and the driver resolves each with ground truth
  /// via RecordTruth when an oracle is available (see audit/audit.h).
  /// The auditor's only feedback edge is deliberate and deterministic:
  /// sustained drift breaches queue a flip that the engine drains at the
  /// top of the *next* Tick into SessionSupervisor::RecordAuditBreach.
  /// With no auditor attached the engine's estimates, RNG streams, and
  /// meter totals are bit-identical to pre-audit builds (test-enforced).
  audit::PrecisionAuditor* auditor = nullptr;

  /// Optional sampler-introspection aggregator (not owned; null
  /// disables). Wired into the content sampling operator the engine
  /// builds: every walk batch folds its visit/probe/hop record and
  /// closes with mixing + load diagnostics against the live membership.
  /// When the diagnostics flag a stationary-gap breach, the engine
  /// stamps the next snapshot observation's mixing_breach so the
  /// auditor can attribute a coinciding miss to poor_mixing. Same
  /// purity contract as `tracer`: estimates, RNG streams, and meter
  /// totals are bit-identical with or without one (test-enforced).
  diag::SamplerDiag* diag = nullptr;

  /// Optional peer-health monitor (not owned; null disables). Wired into
  /// the content sampling operator the engine builds: walk batches fold
  /// per-peer probe/hop outcomes into the monitor's phi-accrual scores
  /// and per-peer circuit breakers, and each batch routes around the
  /// quarantine set frozen at its start (see net/peer_health.h). Unlike
  /// the pure observers above, the monitor deliberately STEERS walks —
  /// but deterministically: health state folds in walk-index order, so
  /// results stay bit-identical across thread counts. The engine drives
  /// the monitor's virtual clock (set_now per Tick), stamps snapshot
  /// observations' `quarantine` flag for audit attribution, and drains
  /// TakePendingQuarantineFlip into
  /// SessionSupervisor::RecordQuarantineBreach one tick after the
  /// quarantine fraction crosses its threshold. With no monitor attached
  /// the engine is bit-identical to pre-health builds (test-enforced).
  PeerHealthMonitor* health = nullptr;

  /// Optional external sample source (not owned; must outlive the
  /// engine). When set, the engine draws every fresh sample through it
  /// instead of building its own TwoStageTupleSampler — this is the
  /// interposition point the multi-query node uses to coalesce
  /// same-tick snapshot demands into one shared walk batch (see
  /// core/query_scheduler.h). Requires CreateWithOperator with a shared
  /// operator (the source is expected to wrap that operator's sampler),
  /// so the checkpoint blob carries no sampler RNG of its own: the
  /// caller owns and persists the shared sampling state.
  SampleSource* sample_source = nullptr;
};

/// What one engine tick did.
struct EngineTickResult {
  bool snapshot_executed = false;  ///< A sampling occasion ran this tick.
  bool result_updated = false;     ///< The reported result moved (Δ ≥ δ).
  double reported_value = 0.0;     ///< Current running result X̂[t].
  bool has_result = false;         ///< False until the first snapshot.
  /// True when this tick's answer is degraded: fresh sampling timed out
  /// under faults and the engine fell back to retained samples (or, as
  /// a last resort, held the previous result).
  bool degraded = false;
  /// True when this tick's snapshot was finalized early against its
  /// message/step budget (deadline-budgeted partial snapshot): the
  /// estimate is fresh but from fewer samples, under an honestly wider
  /// interval, and still feeds the PRED timeline.
  bool partial = false;
  /// Half-width of the reported confidence interval in query units.
  /// ε on healthy ticks (the contract); wider on degraded ticks, and
  /// growing while consecutive snapshots keep failing.
  double ci_halfwidth = 0.0;
};

/// Cumulative efficiency counters (the paper's metrics).
struct EngineStats {
  size_t ticks = 0;
  size_t snapshots = 0;        ///< Snapshot queries executed (Fig. 4-a).
  size_t result_updates = 0;   ///< Times the reported result changed.
  size_t total_samples = 0;    ///< Retained + fresh (Fig. 4-b, 5-a).
  size_t fresh_samples = 0;    ///< Network-drawn samples.
  size_t retained_samples = 0; ///< Re-evaluated in place.
  size_t degraded_ticks = 0;   ///< Ticks answered via degraded fallback.
  size_t partial_snapshots = 0;  ///< Snapshots finalized early on budget.
};

/// Publishes cumulative EngineStats counters into `registry` under the
/// `engine.*` namespace (engine.ticks, engine.snapshots, ...), tagged
/// with an optional `run` label. Counters are monotone, so the bridge
/// *sets* each counter to the stats value via delta — call it once per
/// run (or repeatedly with growing stats). Null registry is a no-op.
void ExportToRegistry(const EngineStats& stats, obs::Registry* registry,
                      const std::string& run_label = "");

/// The Digest query-answering engine (paper §III): one instance runs at
/// the querying node and drives one continuous aggregate query over the
/// simulated P2P database, producing the running estimate X̂[t] with the
/// (δ, ε, p) precision contract.
///
/// Call Tick(t) once per simulated time unit with strictly increasing t.
/// The engine decides internally whether the tick is a sampling occasion
/// (per the scheduler) and whether the result updates (per δ).
class DigestEngine {
 public:
  /// Builds an engine for `spec` issued at `querying_node`. The graph
  /// and database must outlive the engine. `meter` may be null.
  static Result<std::unique_ptr<DigestEngine>> Create(
      const Graph* graph, const P2PDatabase* db, ContinuousQuerySpec spec,
      NodeId querying_node, Rng rng, MessageMeter* meter,
      DigestEngineOptions options = {});

  /// Like Create, but sampling through `shared_operator` (not owned;
  /// must be configured with the content-size weight and outlive the
  /// engine). This is how one node runs several continuous queries over
  /// a single sampling operator whose warm agents they all reuse (the
  /// per-node architecture of §III; see DigestNode). Only meaningful
  /// with SamplerKind::kTwoStageMcmc.
  static Result<std::unique_ptr<DigestEngine>> CreateWithOperator(
      const Graph* graph, const P2PDatabase* db, ContinuousQuerySpec spec,
      NodeId querying_node, Rng rng, MessageMeter* meter,
      SamplingOperator* shared_operator, DigestEngineOptions options = {});

  /// Advances the continuous query to tick `t` (strictly increasing).
  Result<EngineTickResult> Tick(int64_t t);

  /// Current running result; meaningful once has_result().
  double reported_value() const { return reported_value_; }

  /// True after the first completed snapshot.
  bool has_result() const { return has_result_; }

  /// True when Tick(t) would open a sampling occasion: the engine has
  /// no result yet, or the (PRED/ALL) schedule is due at `t`. Pure
  /// peek — no state moves. The node-level scheduler uses this to
  /// batch same-tick snapshot demands before any engine ticks.
  bool WouldSnapshotAt(int64_t t) const {
    return !has_result_ || t >= next_snapshot_tick_;
  }

  /// Cumulative counters.
  const EngineStats& stats() const { return stats_; }

  /// The engine's configuration.
  const DigestEngineOptions& options() const { return options_; }

  /// The precision/query spec under execution.
  const ContinuousQuerySpec& spec() const { return spec_; }

  /// The repeated-sampling correlation estimate ρ̂ (0 when running the
  /// independent estimator).
  double correlation_estimate() const;

  /// Forward regression (§VIII extension): a retrospectively improved
  /// estimate of the previous sampling occasion's aggregate, in query
  /// units. Fails for independent-estimator engines and before the
  /// second occasion.
  Result<double> AdjustedPreviousResult() const;

  /// The session-health supervisor (pure observer over snapshot
  /// outcomes; see core/supervisor.h).
  const SessionSupervisor& supervisor() const { return supervisor_; }
  SessionHealth health() const { return supervisor_.health(); }

  /// Serializes the full session recovery state — engine scalars and
  /// stats, the PRED history window, the supervisor machine, estimator
  /// cross-occasion state (retained pool, regression recursion), every
  /// owned RNG stream position, and the meter's counters — into a
  /// versioned JSON blob ("digest-checkpoint-v3"; v2 added the optional
  /// "audit" section, present iff an auditor is attached; v3 the
  /// optional "health" section, present iff a peer-health monitor is
  /// attached). Emits one
  /// CheckpointEvent when tracing. Engines sampling through a *shared*
  /// operator (CreateWithOperator) record that the operator was external;
  /// its warm agents and stream are the caller's to preserve.
  Result<std::string> Checkpoint() const;

  /// Restores a checkpoint produced by an engine of identical
  /// construction (same graph, database, spec, options, and seed). After
  /// Restore the engine replays the exact tick/draw sequence the
  /// checkpointing engine would have produced uninterrupted — bit
  /// identical estimates, meter counts, and trace (modulo the
  /// checkpoint/restore events themselves). Version or shape mismatches
  /// fail with InvalidArgument and leave the engine untouched; partial
  /// application is impossible because all state is parsed before any is
  /// installed. Emits one RestoreEvent when tracing.
  Status Restore(std::string_view blob);

 private:
  DigestEngine(const Graph* graph, const P2PDatabase* db,
               ContinuousQuerySpec spec, NodeId querying_node,
               MessageMeter* meter, DigestEngineOptions options);

  const Graph* graph_;
  const P2PDatabase* db_;
  ContinuousQuerySpec spec_;
  NodeId querying_node_;
  MessageMeter* meter_;
  DigestEngineOptions options_;

  // Owned plumbing, wired up in Create.
  std::unique_ptr<SamplingOperator> sampling_operator_;
  std::unique_ptr<SamplingOperator> uniform_operator_;  // Size estimation.
  std::unique_ptr<TwoStageTupleSampler> two_stage_sampler_;
  std::unique_ptr<ExactTupleSampler> exact_sampler_;
  std::unique_ptr<SampleSource> sample_source_;
  std::unique_ptr<SizeOracle> size_oracle_;
  std::unique_ptr<SnapshotEstimator> estimator_;
  Extrapolator extrapolator_;
  SessionSupervisor supervisor_;
  bool shared_operator_ = false;  // Sampling through a caller-owned op.

  EngineStats stats_;
  double reported_value_ = 0.0;
  double last_ci_halfwidth_ = 0.0;  // Reported CI; widens while degraded.
  bool has_result_ = false;
  int64_t next_snapshot_tick_ = INT64_MIN;
  int64_t last_tick_ = INT64_MIN;
  int64_t last_gap_ = 1;  // Gap that led to the current snapshot.
};

}  // namespace digest

#endif  // DIGEST_CORE_ENGINE_H_
