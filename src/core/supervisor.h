#ifndef DIGEST_CORE_SUPERVISOR_H_
#define DIGEST_CORE_SUPERVISOR_H_

#include <cstddef>
#include <cstdint>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/tracer.h"

namespace digest {

/// Health of one continuous-query session, as judged from the stream of
/// snapshot outcomes. The states form the ladder
///
///   HEALTHY → DEGRADED → STALE → RECOVERING → HEALTHY
///
/// driven only by consecutive outcomes — no wall clock, no randomness —
/// so the machine is a pure fold over the outcome sequence and cannot
/// perturb a run's determinism.
enum class SessionHealth {
  kHealthy = 0,     ///< Last snapshot met the (ε, p) contract.
  kDegraded = 1,    ///< Recent snapshot(s) fell back or answered partially.
  kStale = 2,       ///< A failure streak long enough that the reported
                    ///< value should be treated as stale.
  kRecovering = 3,  ///< Contract-meeting snapshots are arriving again but
                    ///< the streak is not yet long enough to trust.
};

/// How one snapshot occasion ended, from the engine's point of view.
enum class SnapshotOutcome {
  kMetContract = 0,  ///< Fresh estimate within the (ε, p) contract.
  kWidenedCi = 1,    ///< Fallback answer with an honestly widened CI
                     ///< (retained-pool or held-result path).
  kPartial = 2,      ///< Deadline-budgeted early finalization from the
                     ///< samples collected before the budget ran out.
  kTimeout = 3,      ///< The occasion produced no usable estimate at all.
};

/// Stable lower-snake name (used in trace events and metric labels).
const char* SessionHealthName(SessionHealth health);
const char* SnapshotOutcomeName(SnapshotOutcome outcome);

constexpr size_t kNumSessionHealthStates = 4;
constexpr size_t kNumSnapshotOutcomes = 4;

struct SupervisorOptions {
  /// Consecutive non-contract outcomes (while already degraded) after
  /// which the session is declared STALE.
  size_t stale_threshold = 3;

  /// Consecutive contract-meeting outcomes needed to climb from
  /// STALE/RECOVERING back to HEALTHY.
  size_t recovery_successes = 2;

  /// Both thresholds must be >= 1.
  Status Validate() const;
};

/// Per-query-session supervisor: folds snapshot outcomes into a health
/// state machine and exposes the result through the tracer (one
/// SupervisorStateEvent per transition) and the metrics registry.
///
/// Transition rules (deterministic; `failure` = any outcome other than
/// kMetContract):
///
///   HEALTHY    --failure-->                DEGRADED
///   DEGRADED   --success-->                HEALTHY
///   DEGRADED   --failure streak >= stale_threshold--> STALE
///   STALE      --success-->                RECOVERING (or HEALTHY when
///                                          recovery_successes == 1)
///   RECOVERING --success streak >= recovery_successes--> HEALTHY
///   RECOVERING --failure-->                STALE
///
/// The supervisor never influences engine decisions — it is a pure
/// observer, so attaching or detaching its tracer/registry cannot change
/// estimates, meter counts, or RNG streams.
class SessionSupervisor {
 public:
  explicit SessionSupervisor(SupervisorOptions options = SupervisorOptions());

  const SupervisorOptions& options() const { return options_; }

  /// Attaches (or detaches, with nullptr) the trace sink for transition
  /// events. Not owned; must outlive the supervisor.
  void SetTracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Folds one snapshot outcome into the machine; returns the health
  /// after the fold. Emits a SupervisorStateEvent iff the state changed.
  SessionHealth RecordOutcome(SnapshotOutcome outcome);

  /// Forced degradation on a sustained precision-audit drift breach (the
  /// engine drains PrecisionAuditor::TakePendingBreachFlip at the top of
  /// each tick). Only acts from HEALTHY — a session that is already
  /// degraded/stale carries strictly worse news than the breach — and
  /// emits a SupervisorStateEvent with outcome name "audit_breach".
  SessionHealth RecordAuditBreach();

  /// Forced degradation when the peer-health monitor reports the
  /// quarantine fraction crossed its threshold (the engine drains
  /// PeerHealthMonitor::TakePendingQuarantineFlip each tick, one tick
  /// behind the crossing — the same lag discipline as the audit
  /// breach). Only acts from HEALTHY; emits a SupervisorStateEvent with
  /// outcome name "peer_quarantine".
  SessionHealth RecordQuarantineBreach();

  SessionHealth health() const { return health_; }
  size_t consecutive_failures() const { return consecutive_failures_; }
  size_t consecutive_successes() const { return consecutive_successes_; }
  uint64_t transitions() const { return transitions_; }
  uint64_t outcome_count(SnapshotOutcome outcome) const {
    return outcome_counts_[static_cast<size_t>(outcome)];
  }

  /// Dumps cumulative outcome/transition counters and the current state
  /// into `registry` (counter supervisor.outcomes{outcome=...}, counter
  /// supervisor.transitions{from=...,to=...}, gauge supervisor.state).
  /// Call once at end of run, like the other registry bridges.
  void ExportToRegistry(obs::Registry* registry) const;

  /// Serializable machine state for the engine checkpoint.
  struct State {
    SessionHealth health = SessionHealth::kHealthy;
    uint64_t consecutive_failures = 0;
    uint64_t consecutive_successes = 0;
    uint64_t transitions = 0;
    uint64_t outcome_counts[kNumSnapshotOutcomes] = {0, 0, 0, 0};
    uint64_t transition_counts[kNumSessionHealthStates]
                              [kNumSessionHealthStates] = {};
  };
  State SaveState() const;
  void RestoreState(const State& state);

 private:
  void Transition(SessionHealth to, SnapshotOutcome outcome,
                  uint64_t consecutive);
  void TransitionNamed(SessionHealth to, const char* outcome_name,
                       uint64_t consecutive);

  SupervisorOptions options_;
  obs::Tracer* tracer_ = nullptr;
  SessionHealth health_ = SessionHealth::kHealthy;
  size_t consecutive_failures_ = 0;
  size_t consecutive_successes_ = 0;
  uint64_t transitions_ = 0;
  uint64_t outcome_counts_[kNumSnapshotOutcomes] = {0, 0, 0, 0};
  uint64_t transition_counts_[kNumSessionHealthStates]
                             [kNumSessionHealthStates] = {};
};

}  // namespace digest

#endif  // DIGEST_CORE_SUPERVISOR_H_
