#include "core/metrics.h"

#include <algorithm>
#include <cmath>

namespace digest {

Result<PrecisionReport> EvaluatePrecision(const std::vector<double>& reported,
                                          const std::vector<double>& truth,
                                          const PrecisionSpec& precision) {
  if (reported.size() != truth.size()) {
    return Status::InvalidArgument(
        "reported and truth series must be tick-aligned");
  }
  if (reported.empty()) {
    return Status::InvalidArgument("precision evaluation needs ticks");
  }
  DIGEST_RETURN_IF_ERROR(precision.Validate());
  PrecisionReport report;
  report.ticks = reported.size();
  const double tolerance = precision.epsilon + precision.delta;
  double sum_err = 0.0;
  size_t within = 0;
  for (size_t i = 0; i < reported.size(); ++i) {
    const double err = std::fabs(reported[i] - truth[i]);
    sum_err += err;
    report.max_abs_error = std::max(report.max_abs_error, err);
    if (err <= tolerance) ++within;
  }
  report.mean_abs_error = sum_err / static_cast<double>(reported.size());
  report.within_tolerance_fraction =
      static_cast<double>(within) / static_cast<double>(reported.size());
  return report;
}

Result<PrecisionReport> EvaluatePrecisionWidened(
    const std::vector<double>& reported, const std::vector<double>& truth,
    const std::vector<double>& ci_halfwidths,
    const PrecisionSpec& precision) {
  if (reported.size() != truth.size() ||
      reported.size() != ci_halfwidths.size()) {
    return Status::InvalidArgument(
        "reported, truth, and ci series must be tick-aligned");
  }
  if (reported.empty()) {
    return Status::InvalidArgument("precision evaluation needs ticks");
  }
  DIGEST_RETURN_IF_ERROR(precision.Validate());
  PrecisionReport report;
  report.ticks = reported.size();
  double sum_err = 0.0;
  size_t within = 0;
  for (size_t i = 0; i < reported.size(); ++i) {
    const double err = std::fabs(reported[i] - truth[i]);
    sum_err += err;
    report.max_abs_error = std::max(report.max_abs_error, err);
    const double tolerance =
        std::max(precision.epsilon, ci_halfwidths[i]) + precision.delta;
    if (err <= tolerance) ++within;
  }
  report.mean_abs_error = sum_err / static_cast<double>(reported.size());
  report.within_tolerance_fraction =
      static_cast<double>(within) / static_cast<double>(reported.size());
  return report;
}

}  // namespace digest
