#include "core/supervisor.h"

#include <cstring>

namespace digest {

const char* SessionHealthName(SessionHealth health) {
  switch (health) {
    case SessionHealth::kHealthy:
      return "healthy";
    case SessionHealth::kDegraded:
      return "degraded";
    case SessionHealth::kStale:
      return "stale";
    case SessionHealth::kRecovering:
      return "recovering";
  }
  return "unknown";
}

const char* SnapshotOutcomeName(SnapshotOutcome outcome) {
  switch (outcome) {
    case SnapshotOutcome::kMetContract:
      return "met_contract";
    case SnapshotOutcome::kWidenedCi:
      return "widened_ci";
    case SnapshotOutcome::kPartial:
      return "partial";
    case SnapshotOutcome::kTimeout:
      return "timeout";
  }
  return "unknown";
}

Status SupervisorOptions::Validate() const {
  if (stale_threshold < 1) {
    return Status::InvalidArgument("stale_threshold must be >= 1");
  }
  if (recovery_successes < 1) {
    return Status::InvalidArgument("recovery_successes must be >= 1");
  }
  return Status::OK();
}

SessionSupervisor::SessionSupervisor(SupervisorOptions options)
    : options_(options) {}

void SessionSupervisor::Transition(SessionHealth to, SnapshotOutcome outcome,
                                   uint64_t consecutive) {
  TransitionNamed(to, SnapshotOutcomeName(outcome), consecutive);
}

void SessionSupervisor::TransitionNamed(SessionHealth to,
                                        const char* outcome_name,
                                        uint64_t consecutive) {
  const SessionHealth from = health_;
  if (from == to) return;
  health_ = to;
  ++transitions_;
  ++transition_counts_[static_cast<size_t>(from)][static_cast<size_t>(to)];
  if (obs::Tracing(tracer_)) {
    tracer_->Emit(obs::SupervisorStateEvent{SessionHealthName(from),
                                            SessionHealthName(to),
                                            outcome_name, consecutive});
  }
}

SessionHealth SessionSupervisor::RecordAuditBreach() {
  if (health_ != SessionHealth::kHealthy) return health_;
  consecutive_failures_ = 1;
  consecutive_successes_ = 0;
  TransitionNamed(SessionHealth::kDegraded, "audit_breach", 1);
  return health_;
}

SessionHealth SessionSupervisor::RecordQuarantineBreach() {
  if (health_ != SessionHealth::kHealthy) return health_;
  consecutive_failures_ = 1;
  consecutive_successes_ = 0;
  TransitionNamed(SessionHealth::kDegraded, "peer_quarantine", 1);
  return health_;
}

SessionHealth SessionSupervisor::RecordOutcome(SnapshotOutcome outcome) {
  ++outcome_counts_[static_cast<size_t>(outcome)];
  const bool success = outcome == SnapshotOutcome::kMetContract;
  if (success) {
    ++consecutive_successes_;
    consecutive_failures_ = 0;
  } else {
    ++consecutive_failures_;
    consecutive_successes_ = 0;
  }

  switch (health_) {
    case SessionHealth::kHealthy:
      if (!success) {
        Transition(SessionHealth::kDegraded, outcome, consecutive_failures_);
      }
      break;
    case SessionHealth::kDegraded:
      if (success) {
        // Shallow degradation heals on a single contract-meeting
        // snapshot; the RECOVERING probation only applies after STALE.
        Transition(SessionHealth::kHealthy, outcome, consecutive_successes_);
      } else if (consecutive_failures_ >= options_.stale_threshold) {
        Transition(SessionHealth::kStale, outcome, consecutive_failures_);
      }
      break;
    case SessionHealth::kStale:
      if (success) {
        if (consecutive_successes_ >= options_.recovery_successes) {
          Transition(SessionHealth::kHealthy, outcome,
                     consecutive_successes_);
        } else {
          Transition(SessionHealth::kRecovering, outcome,
                     consecutive_successes_);
        }
      }
      break;
    case SessionHealth::kRecovering:
      if (success) {
        if (consecutive_successes_ >= options_.recovery_successes) {
          Transition(SessionHealth::kHealthy, outcome,
                     consecutive_successes_);
        }
      } else {
        Transition(SessionHealth::kStale, outcome, consecutive_failures_);
      }
      break;
  }
  return health_;
}

void SessionSupervisor::ExportToRegistry(obs::Registry* registry) const {
  if (registry == nullptr) return;
  for (size_t i = 0; i < kNumSnapshotOutcomes; ++i) {
    const uint64_t count = outcome_counts_[i];
    if (count == 0) continue;
    registry
        ->GetCounter("supervisor.outcomes",
                     {{"outcome", SnapshotOutcomeName(
                                      static_cast<SnapshotOutcome>(i))}})
        ->Increment(count);
  }
  for (size_t from = 0; from < kNumSessionHealthStates; ++from) {
    for (size_t to = 0; to < kNumSessionHealthStates; ++to) {
      const uint64_t count = transition_counts_[from][to];
      if (count == 0) continue;
      registry
          ->GetCounter(
              "supervisor.transitions",
              {{"from", SessionHealthName(static_cast<SessionHealth>(from))},
               {"to", SessionHealthName(static_cast<SessionHealth>(to))}})
          ->Increment(count);
    }
  }
  registry->GetGauge("supervisor.state")
      ->Set(static_cast<double>(static_cast<int>(health_)));
}

SessionSupervisor::State SessionSupervisor::SaveState() const {
  State s;
  s.health = health_;
  s.consecutive_failures = consecutive_failures_;
  s.consecutive_successes = consecutive_successes_;
  s.transitions = transitions_;
  std::memcpy(s.outcome_counts, outcome_counts_, sizeof(outcome_counts_));
  std::memcpy(s.transition_counts, transition_counts_,
              sizeof(transition_counts_));
  return s;
}

void SessionSupervisor::RestoreState(const State& state) {
  health_ = state.health;
  consecutive_failures_ = static_cast<size_t>(state.consecutive_failures);
  consecutive_successes_ = static_cast<size_t>(state.consecutive_successes);
  transitions_ = state.transitions;
  std::memcpy(outcome_counts_, state.outcome_counts, sizeof(outcome_counts_));
  std::memcpy(transition_counts_, state.transition_counts,
              sizeof(transition_counts_));
}

}  // namespace digest
