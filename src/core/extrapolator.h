#ifndef DIGEST_CORE_EXTRAPOLATOR_H_
#define DIGEST_CORE_EXTRAPOLATOR_H_

#include <algorithm>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/result.h"
#include "numeric/polynomial.h"

namespace digest {

/// Tuning of the continual-querying extrapolation algorithm (PRED-k).
struct ExtrapolatorOptions {
  /// k: number of previous aggregate values used for prediction. The
  /// fitted Taylor polynomial has degree k−1 (paper: PRED-k). Must be
  /// ≥ 2.
  size_t history_points = 4;

  /// Upper bound on how far ahead a snapshot may be scheduled, in ticks.
  /// Guards against runaway predictions when the aggregate flatlines.
  int64_t max_skip = 64;

  /// Fit the polynomial with Levenberg–Marquardt (the paper's choice);
  /// when false, plain linear least squares is used (ablation knob —
  /// polynomial fitting is linear, so both should agree).
  bool use_levmar = true;

  /// Safety multiplier on the Lagrange-remainder estimate (≥ 1 is more
  /// conservative → earlier snapshots).
  double remainder_inflation = 1.0;
};

/// The extrapolation algorithm of §IV-A: fits a degree-(k−1) Taylor
/// polynomial P to the last k observed aggregate values, bounds the
/// approximation error by a Lagrange-remainder estimate
/// |R(t)| ≈ |c|·(t−t_u)^k (c from the order-k divided difference of the
/// history), and schedules the next snapshot at the earliest t where the
/// predicted drift can reach the resolution threshold:
///
///   |P(t) − P(t_u)| + |R(t)| > δ.
///
/// During the bootstrap period (fewer than k observations) prediction is
/// unavailable and the caller must query continuously (every tick).
class Extrapolator {
 public:
  explicit Extrapolator(ExtrapolatorOptions options = {});

  /// Records the snapshot result x observed at tick t. Ticks must be
  /// strictly increasing.
  Status AddObservation(int64_t t, double x);

  /// True once k observations are available.
  bool Bootstrapped() const {
    return history_.size() >= options_.history_points;
  }

  /// Earliest tick (> the last observed tick) at which the aggregate may
  /// have drifted by δ away from `reference` — the running result
  /// X̂[t_u] of Eq. 4 (drift accumulated since the last *update* counts
  /// toward the threshold, not just drift since the last observation).
  /// Pass the last observation itself when no separate reported value
  /// exists. Returns last_tick + 1 while bootstrapping, and never more
  /// than last_tick + max_skip. `delta` must be ≥ 0.
  Result<int64_t> PredictNextSnapshotTime(double delta,
                                          double reference) const;

  /// Overload using the fitted value at the last observation as the
  /// reference.
  Result<int64_t> PredictNextSnapshotTime(double delta) const;

  /// Value of the fitted polynomial at tick t (extrapolated estimate,
  /// usable between snapshots). Falls back to the last observation while
  /// bootstrapping; fails before any observation.
  Result<double> ExtrapolatedValue(int64_t t) const;

  /// Forgets all history.
  void Reset() { history_.clear(); }

  /// Serializable PRED history window (parallel tick/value arrays), for
  /// the engine checkpoint. Restoring replaces the whole window.
  struct State {
    std::vector<int64_t> ticks;
    std::vector<double> values;
  };
  State SaveState() const {
    State s;
    s.ticks.reserve(history_.size());
    s.values.reserve(history_.size());
    for (const Observation& o : history_) {
      s.ticks.push_back(o.t);
      s.values.push_back(o.x);
    }
    return s;
  }
  void RestoreState(const State& state) {
    history_.clear();
    const size_t n = std::min(state.ticks.size(), state.values.size());
    for (size_t i = 0; i < n; ++i) {
      history_.push_back(Observation{state.ticks[i], state.values[i]});
    }
  }

  const ExtrapolatorOptions& options() const { return options_; }

 private:
  struct Observation {
    int64_t t;
    double x;
  };

  /// Fits the Taylor polynomial in the shifted variable s = t − t_last
  /// to the most recent k observations (plus the remainder constant).
  struct Fit {
    Polynomial poly;       // In s = t − t_last.
    double remainder_c;    // |f⁽ᵏ⁾/k!| estimate.
  };
  Result<Fit> FitHistory() const;

  ExtrapolatorOptions options_;
  std::deque<Observation> history_;  // Most recent at the back.
};

}  // namespace digest

#endif  // DIGEST_CORE_EXTRAPOLATOR_H_
