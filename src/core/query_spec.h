#ifndef DIGEST_CORE_QUERY_SPEC_H_
#define DIGEST_CORE_QUERY_SPEC_H_

#include <string>

#include "common/result.h"
#include "db/query.h"

namespace digest {

/// User-defined precision of a fixed-precision approximate continuous
/// aggregate query (paper §II).
struct PrecisionSpec {
  /// Resolution δ ≥ 0: the result is re-updated only when the aggregate
  /// has moved by at least δ since the last reported update. δ = 0
  /// requests every change (exact-resolution).
  double delta = 0.0;

  /// Confidence interval half-width ε > 0: at each update time the
  /// estimate lies within ±ε of the true aggregate …
  double epsilon = 1.0;

  /// … with probability at least `confidence` ∈ (0, 1).
  double confidence = 0.95;

  /// Validates the ranges above.
  Status Validate() const;
};

/// A continuous aggregate query Q^C: the underlying snapshot query Q plus
/// the precision contract. The query runs from its arrival tick until the
/// driver stops it.
struct ContinuousQuerySpec {
  AggregateQuery query;
  PrecisionSpec precision;

  /// Parses "SELECT op(expr) FROM R" and attaches the precision spec.
  static Result<ContinuousQuerySpec> Create(std::string_view query_text,
                                            PrecisionSpec precision);

  /// Human-readable one-liner for logs and benches.
  std::string ToString() const;
};

}  // namespace digest

#endif  // DIGEST_CORE_QUERY_SPEC_H_
