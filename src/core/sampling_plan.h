#ifndef DIGEST_CORE_SAMPLING_PLAN_H_
#define DIGEST_CORE_SAMPLING_PLAN_H_

#include <cstddef>

#include "common/result.h"

namespace digest {

/// The closed-form planning math of §IV-B, exposed as pure functions so
/// the estimators stay thin and the formulas are unit-testable against
/// the paper's equations.

/// Eq. 6: samples needed so that a mean estimate from iid draws with
/// per-tuple stddev `sigma` lies within ±epsilon with two-sided normal
/// quantile `z`. Returns at least 1; fails on non-positive epsilon/z or
/// negative sigma.
Result<size_t> CltSampleSize(double sigma, double epsilon, double z);

/// Hoeffding bound alternative (distribution-free, used by snapshot-
/// query systems such as Arai et al.): for values confined to a range of
/// width `range`, n = ln(2/(1−p))·range²/(2ε²) guarantees the confidence
/// without any variance estimate — typically far more conservative than
/// the CLT size. Fails on non-positive range/epsilon or p outside (0,1).
Result<size_t> HoeffdingSampleSize(double range, double epsilon,
                                   double confidence);

/// The repeated-sampling occasion plan (Eq. 8–10, with the Eq. 9
/// erratum corrected — see EXPERIMENTS.md).
struct RepeatedSamplingPlan {
  size_t total = 0;     ///< n: total samples this occasion.
  size_t retained = 0;  ///< g_opt = n·√(1−ρ²)/(1+√(1−ρ²)).
  size_t fresh = 0;     ///< f_opt = n/(1+√(1−ρ²)).
};

/// Plans an occasion: the total n comes from Eq. 10's optimal variance
/// σ²(1+√(1−ρ²))/(2n) ≤ (ε/z)², then Eq. 9 (corrected) splits it.
/// |rho| is clamped to 0.99 for planning. Fails on invalid inputs.
Result<RepeatedSamplingPlan> PlanRepeatedOccasion(double sigma, double rho,
                                                  double epsilon, double z);

/// Eq. 8: variance of the combined two-occasion estimator with fresh
/// portion f of total n, unit per-tuple variance (multiply by σ²).
/// Fails unless 0 < f ≤ n and |rho| ≤ 1.
Result<double> CombinedVarianceFactor(size_t n, size_t fresh, double rho);

/// Eq. 11's improvement ratio var_indep / var_rpt at the optimum:
/// 2/(1+√(1−ρ²)).
double OptimalImprovementRatio(double rho);

}  // namespace digest

#endif  // DIGEST_CORE_SAMPLING_PLAN_H_
