#include "core/digest_node.h"

#include <string>

namespace digest {

Result<std::unique_ptr<DigestNode>> DigestNode::Create(
    const Graph* graph, const P2PDatabase* db, NodeId self, Rng rng,
    MessageMeter* meter, DigestEngineOptions default_options) {
  if (!graph->HasNode(self)) {
    return Status::InvalidArgument("node is not in the network");
  }
  std::unique_ptr<DigestNode> node(
      new DigestNode(graph, db, self, meter, default_options));
  node->rng_ = rng;
  if (default_options.sampler == SamplerKind::kTwoStageMcmc) {
    node->operator_ = std::make_unique<SamplingOperator>(
        graph, ContentSizeWeight(*db), node->rng_.Fork(), meter,
        default_options.sampling_options);
  }
  return node;
}

Result<QueryId> DigestNode::IssueQuery(ContinuousQuerySpec spec) {
  return IssueQuery(std::move(spec), default_options_);
}

Result<QueryId> DigestNode::IssueQuery(ContinuousQuerySpec spec,
                                       DigestEngineOptions options) {
  if (options.sampler != default_options_.sampler) {
    return Status::InvalidArgument(
        "query sampler kind must match the node's shared operator");
  }
  DIGEST_ASSIGN_OR_RETURN(
      std::unique_ptr<DigestEngine> engine,
      DigestEngine::CreateWithOperator(graph_, db_, std::move(spec), self_,
                                       rng_.Fork(), meter_,
                                       operator_.get(), options));
  const QueryId id = next_id_++;
  engines_.emplace(id, std::move(engine));
  return id;
}

Status DigestNode::CancelQuery(QueryId id) {
  if (engines_.erase(id) == 0) {
    return Status::NotFound("no query with id " + std::to_string(id));
  }
  return Status::OK();
}

Result<std::vector<std::pair<QueryId, EngineTickResult>>> DigestNode::Tick(
    int64_t t) {
  std::vector<std::pair<QueryId, EngineTickResult>> out;
  out.reserve(engines_.size());
  for (auto& [id, engine] : engines_) {
    DIGEST_ASSIGN_OR_RETURN(EngineTickResult result, engine->Tick(t));
    out.emplace_back(id, result);
  }
  return out;
}

Result<const DigestEngine*> DigestNode::engine(QueryId id) const {
  auto it = engines_.find(id);
  if (it == engines_.end()) {
    return Status::NotFound("no query with id " + std::to_string(id));
  }
  return static_cast<const DigestEngine*>(it->second.get());
}

}  // namespace digest
