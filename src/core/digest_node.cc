#include "core/digest_node.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/json.h"
#include "common/strings.h"
#include "core/checkpoint_util.h"
#include "net/message_meter.h"
#include "net/peer_health.h"
#include "obs/metrics.h"
#include "obs/tracer.h"

namespace digest {
namespace {

constexpr char kNodeCheckpointVersion[] = "digest-node-checkpoint-v1";

/// Decimal QueryId map key, strictly ("12", not "12x" or "").
Result<QueryId> ParseQueryKey(const std::string& key) {
  if (key.empty()) {
    return Status::InvalidArgument("node checkpoint: empty query id");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long id = std::strtoull(key.c_str(), &end, 10);
  if (end != key.c_str() + key.size() || errno == ERANGE) {
    return Status::InvalidArgument("node checkpoint: bad query id '" + key +
                                   "'");
  }
  return static_cast<QueryId>(id);
}

}  // namespace

Result<std::unique_ptr<DigestNode>> DigestNode::Create(
    const Graph* graph, const P2PDatabase* db, NodeId self, Rng rng,
    MessageMeter* meter, DigestEngineOptions default_options,
    DigestNodeOptions node_options) {
  if (!graph->HasNode(self)) {
    return Status::InvalidArgument("node is not in the network");
  }
  if (node_options.max_queries == 0) {
    return Status::InvalidArgument("max_queries must be >= 1");
  }
  // The engine-level thread count flows into the shared operator the
  // same way DigestEngine::Create flows it into operators it builds; a
  // non-zero sampling_options.num_threads set explicitly wins.
  if (default_options.sampling_options.num_threads == 0) {
    default_options.sampling_options.num_threads =
        default_options.num_threads;
  }
  std::unique_ptr<DigestNode> node(new DigestNode(
      graph, db, self, meter, default_options, node_options));
  node->rng_ = rng;
  if (default_options.sampler == SamplerKind::kTwoStageMcmc) {
    node->operator_ = std::make_unique<SamplingOperator>(
        graph, ContentSizeWeight(*db), node->rng_.Fork(), meter,
        default_options.sampling_options);
    // Full observability on the shared operator: its walk batches serve
    // every tenant, so their events/metrics/diag/health belong to the
    // node (unlaned), not to any one query.
    node->operator_->SetFaultPlan(default_options.fault_plan);
    node->operator_->SetObservability(default_options.tracer,
                                      default_options.registry,
                                      default_options.profiler);
    node->operator_->SetDiag(default_options.diag);
    node->operator_->SetHealth(default_options.health);
    if (node_options.coalesce_snapshots) {
      node->shared_sampler_ = std::make_unique<TwoStageTupleSampler>(
          db, node->operator_.get(), node->rng_.Fork());
      node->shared_source_ = std::make_unique<CoalescingSampleSource>(
          node->shared_sampler_.get());
    }
  }
  node->ExportRegistry();
  return node;
}

Result<QueryId> DigestNode::IssueQuery(ContinuousQuerySpec spec) {
  return IssueQuery(std::move(spec), default_options_);
}

Result<QueryId> DigestNode::IssueQuery(ContinuousQuerySpec spec,
                                       DigestEngineOptions options) {
  if (options.sampler != default_options_.sampler) {
    return Status::InvalidArgument(
        "query sampler kind must match the node's shared operator");
  }
  if (engines_.size() >= node_options_.max_queries) {
    return Status::FailedPrecondition(
        "node at max_queries capacity (" +
        std::to_string(node_options_.max_queries) + ")");
  }
  const double epsilon = spec.precision.epsilon;
  const QueryId id = next_id_;
  // The query's events ride the node's trace on lane = QueryId; the
  // engine drives the lane wrapper's (unread) clock while the node
  // drives the parent's once per tick.
  obs::Tracer* real =
      options.tracer != nullptr ? options.tracer : default_options_.tracer;
  std::unique_ptr<obs::LaneTracer> lane;
  if (real != nullptr) {
    lane = std::make_unique<obs::LaneTracer>(real,
                                             static_cast<int64_t>(id));
    options.tracer = lane.get();
  }
  if (shared_source_ != nullptr) {
    options.sample_source = shared_source_.get();
  }
  DIGEST_ASSIGN_OR_RETURN(
      std::unique_ptr<DigestEngine> engine,
      DigestEngine::CreateWithOperator(graph_, db_, std::move(spec), self_,
                                       rng_.Fork(), meter_,
                                       operator_.get(), options));
  // Engine creation pointed the shared health monitor at this query's
  // lane; node-level health events must stay unlaned.
  if (options.health != nullptr) {
    options.health->SetTracer(default_options_.tracer != nullptr
                                  ? default_options_.tracer
                                  : real);
  }
  DIGEST_RETURN_IF_ERROR(scheduler_.Register(id, epsilon));
  engines_.emplace(id, std::move(engine));
  if (lane != nullptr) lanes_.emplace(id, std::move(lane));
  ++next_id_;
  ExportRegistry();
  return id;
}

Status DigestNode::CancelQuery(QueryId id) {
  if (engines_.erase(id) == 0) {
    return Status::NotFound("no query with id " + std::to_string(id));
  }
  lanes_.erase(id);
  scheduler_.Unregister(id);
  ExportRegistry();
  return Status::OK();
}

Result<EngineTickResult> DigestNode::TickOne(QueryId id, int64_t t,
                                             bool coalesced) {
  const uint64_t before = meter_ != nullptr ? meter_->Total() : 0;
  if (shared_source_ != nullptr) shared_source_->SetActiveQuery(id);
  DIGEST_ASSIGN_OR_RETURN(EngineTickResult result,
                          engines_.at(id)->Tick(t));
  const uint64_t delta = meter_ != nullptr ? meter_->Total() - before : 0;
  scheduler_.RecordTick(id, delta, result.snapshot_executed,
                        coalesced && result.snapshot_executed);
  return result;
}

Result<std::vector<std::pair<QueryId, EngineTickResult>>> DigestNode::Tick(
    int64_t t) {
  obs::Tracer* tracer = default_options_.tracer;
  if (obs::Tracing(tracer)) tracer->set_now(t);
  // Split the tick: queries whose occasion is due consume the shared
  // pool tightest-ε first (the first one sizes it, the rest ride its
  // prefix); everyone else ticks afterwards in id order.
  QueryScheduler::TickPlan plan = scheduler_.Plan([&](QueryId id) {
    auto it = engines_.find(id);
    return it != engines_.end() && it->second->WouldSnapshotAt(t);
  });
  if (shared_source_ != nullptr) shared_source_->BeginTick();
  const bool coalesced = shared_source_ != nullptr && plan.due.size() >= 2;

  std::vector<std::pair<QueryId, EngineTickResult>> out;
  out.reserve(engines_.size());
  for (QueryId id : plan.due) {
    DIGEST_ASSIGN_OR_RETURN(EngineTickResult r, TickOne(id, t, coalesced));
    out.emplace_back(id, r);
  }
  if (coalesced) {
    scheduler_.NoteCoalescedTick();
    if (obs::Tracing(tracer)) {
      obs::SnapshotCoalescedEvent ev;
      ev.queries = plan.due.size();
      ev.shared_samples = shared_source_->shared_samples();
      ev.consumed_samples = shared_source_->consumed_samples();
      tracer->Emit(ev);
    }
  }
  for (QueryId id : plan.idle) {
    DIGEST_ASSIGN_OR_RETURN(EngineTickResult r,
                            TickOne(id, t, /*coalesced=*/false));
    out.emplace_back(id, r);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  ExportRegistry();
  return out;
}

Result<const DigestEngine*> DigestNode::engine(QueryId id) const {
  auto it = engines_.find(id);
  if (it == engines_.end()) {
    return Status::NotFound("no query with id " + std::to_string(id));
  }
  return static_cast<const DigestEngine*>(it->second.get());
}

Result<QueryCost> DigestNode::query_cost(QueryId id) const {
  const QueryCost* cost = scheduler_.Cost(id);
  if (cost == nullptr) {
    return Status::NotFound("no query with id " + std::to_string(id));
  }
  return *cost;
}

void DigestNode::ExportRegistry() {
  obs::Registry* reg = default_options_.registry;
  if (reg == nullptr) return;
  reg->GetGauge("node.active_queries")
      ->Set(static_cast<double>(engines_.size()));
  reg->GetGauge("node.coalesced_ticks")
      ->Set(static_cast<double>(scheduler_.coalesced_ticks()));
  for (const auto& [id, cost] : scheduler_.costs()) {
    const obs::LabelSet labels = {{"query", std::to_string(id)}};
    reg->GetGauge("node.query.messages", labels)
        ->Set(static_cast<double>(cost.messages));
    reg->GetGauge("node.query.snapshots", labels)
        ->Set(static_cast<double>(cost.snapshots));
    reg->GetGauge("node.query.coalesced", labels)
        ->Set(static_cast<double>(cost.coalesced));
  }
}

Result<std::string> DigestNode::Checkpoint() const {
  using namespace ckpt;  // NOLINT: one codec family, one encoding.
  std::string out;
  out.reserve(8192);
  out += "{\"version\":\"";
  out += kNodeCheckpointVersion;
  out += "\",\"node\":{\"self\":";
  AppendU64(&out, self_);
  out += ",\"next_id\":";
  AppendU64(&out, next_id_);
  out += ",\"coalesce\":";
  AppendBool(&out, shared_source_ != nullptr);
  out += ",\"rng\":";
  AppendRng(&out, rng_.SaveState());
  out += "}";

  out += ",\"scheduler\":{\"coalesced_ticks\":";
  AppendU64(&out, scheduler_.coalesced_ticks());
  out += ",\"costs\":{";
  bool first = true;
  for (const auto& [id, cost] : scheduler_.costs()) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += std::to_string(id);
    out += "\":{\"epsilon\":";
    AppendDouble(&out, cost.epsilon);
    out += ",\"ticks\":";
    AppendU64(&out, cost.ticks);
    out += ",\"snapshots\":";
    AppendU64(&out, cost.snapshots);
    out += ",\"coalesced\":";
    AppendU64(&out, cost.coalesced);
    out += ",\"messages\":";
    AppendU64(&out, cost.messages);
    out += '}';
  }
  out += "}}";

  if (operator_ != nullptr) {
    out += ",\"operator\":";
    AppendOperatorState(&out, operator_->SaveState());
  }
  if (shared_sampler_ != nullptr) {
    out += ",\"sampler_rng\":";
    AppendRng(&out, shared_sampler_->SaveRngState());
  }

  // Every engine's own v3 blob rides as an escaped JSON string — the
  // engine codec owns its format; the node embeds, never re-encodes.
  out += ",\"queries\":{";
  first = true;
  for (const auto& [id, engine] : engines_) {
    DIGEST_ASSIGN_OR_RETURN(std::string blob, engine->Checkpoint());
    if (!first) out += ',';
    first = false;
    out += '"';
    out += std::to_string(id);
    out += "\":\"";
    AppendJsonEscaped(&out, blob);
    out += '"';
  }
  out += "}}";
  return out;
}

Status DigestNode::Restore(std::string_view blob) {
  using namespace ckpt;  // NOLINT
  DIGEST_ASSIGN_OR_RETURN(json::Value root, json::Parse(blob));
  DIGEST_ASSIGN_OR_RETURN(std::string version, root.GetString("version"));
  if (version != kNodeCheckpointVersion) {
    return Status::InvalidArgument("node checkpoint: unsupported version '" +
                                   version + "'");
  }

  // Parse and validate everything before installing anything.
  DIGEST_ASSIGN_OR_RETURN(const json::Value* node, root.GetObject("node"));
  DIGEST_ASSIGN_OR_RETURN(uint64_t self, node->GetUInt64("self"));
  if (self != self_) {
    return Status::InvalidArgument(
        "node checkpoint: host node does not match");
  }
  DIGEST_ASSIGN_OR_RETURN(uint64_t next_id, node->GetUInt64("next_id"));
  DIGEST_ASSIGN_OR_RETURN(bool coalesce, node->GetBool("coalesce"));
  if (coalesce != (shared_source_ != nullptr)) {
    return Status::InvalidArgument(
        "node checkpoint: coalescing topology does not match");
  }
  DIGEST_ASSIGN_OR_RETURN(const json::Value* node_rng_v,
                          node->GetObject("rng"));
  DIGEST_ASSIGN_OR_RETURN(Rng::State node_rng, ParseRng(*node_rng_v));

  DIGEST_ASSIGN_OR_RETURN(const json::Value* sched,
                          root.GetObject("scheduler"));
  DIGEST_ASSIGN_OR_RETURN(uint64_t coalesced_ticks,
                          sched->GetUInt64("coalesced_ticks"));
  DIGEST_ASSIGN_OR_RETURN(const json::Value* costs_v,
                          sched->GetObject("costs"));
  std::map<QueryId, QueryCost> costs;
  for (const auto& [key, value] : costs_v->members()) {
    QueryCost cost;
    DIGEST_ASSIGN_OR_RETURN(cost.epsilon, value.GetDouble("epsilon"));
    DIGEST_ASSIGN_OR_RETURN(cost.ticks, value.GetUInt64("ticks"));
    DIGEST_ASSIGN_OR_RETURN(cost.snapshots, value.GetUInt64("snapshots"));
    DIGEST_ASSIGN_OR_RETURN(cost.coalesced, value.GetUInt64("coalesced"));
    DIGEST_ASSIGN_OR_RETURN(cost.messages, value.GetUInt64("messages"));
    DIGEST_ASSIGN_OR_RETURN(const QueryId id, ParseQueryKey(key));
    costs[id] = cost;
  }

  const bool have_operator = root.Find("operator") != nullptr;
  if (have_operator != (operator_ != nullptr)) {
    return Status::InvalidArgument(
        "node checkpoint: operator topology does not match");
  }
  SamplingOperator::State op_state;
  if (have_operator) {
    DIGEST_ASSIGN_OR_RETURN(const json::Value* op,
                            root.GetObject("operator"));
    DIGEST_ASSIGN_OR_RETURN(op_state, ParseOperatorState(*op));
  }
  const bool have_sampler_rng = root.Find("sampler_rng") != nullptr;
  if (have_sampler_rng != (shared_sampler_ != nullptr)) {
    return Status::InvalidArgument(
        "node checkpoint: shared-sampler topology does not match");
  }
  Rng::State sampler_rng;
  if (have_sampler_rng) {
    DIGEST_ASSIGN_OR_RETURN(const json::Value* v,
                            root.GetObject("sampler_rng"));
    DIGEST_ASSIGN_OR_RETURN(sampler_rng, ParseRng(*v));
  }

  DIGEST_ASSIGN_OR_RETURN(const json::Value* queries_v,
                          root.GetObject("queries"));
  std::map<QueryId, std::string> engine_blobs;
  for (const auto& [key, value] : queries_v->members()) {
    if (!value.is_string()) {
      return Status::InvalidArgument(
          "node checkpoint: query blob must be a string");
    }
    DIGEST_ASSIGN_OR_RETURN(const QueryId id, ParseQueryKey(key));
    engine_blobs[id] = value.string_value();
  }
  // The restored registry must line up with the live one: same ids in
  // the scheduler ledger and the same engines to hand blobs to.
  auto same_keys = [this](const auto& m) {
    if (m.size() != engines_.size()) return false;
    auto it = engines_.begin();
    for (const auto& [id, unused] : m) {
      (void)unused;
      if (it == engines_.end() || it->first != id) return false;
      ++it;
    }
    return true;
  };
  if (!same_keys(costs) || !same_keys(engine_blobs)) {
    return Status::InvalidArgument(
        "node checkpoint: query registry does not match (restore "
        "requires the same issued queries)");
  }

  // Install. Engine::Restore is itself parse-all-then-install, so a
  // blob of mismatched construction fails before touching that engine.
  rng_.RestoreState(node_rng);
  next_id_ = static_cast<QueryId>(next_id);
  scheduler_.set_coalesced_ticks(coalesced_ticks);
  for (const auto& [id, cost] : costs) scheduler_.RestoreCost(id, cost);
  if (operator_ != nullptr) operator_->RestoreState(op_state);
  if (shared_sampler_ != nullptr) {
    shared_sampler_->RestoreRngState(sampler_rng);
  }
  for (auto& [id, engine] : engines_) {
    DIGEST_RETURN_IF_ERROR(engine->Restore(engine_blobs.at(id)));
  }
  ExportRegistry();
  return Status::OK();
}

}  // namespace digest
