#ifndef DIGEST_CORE_METRICS_H_
#define DIGEST_CORE_METRICS_H_

#include <vector>

#include "common/result.h"
#include "core/query_spec.h"

namespace digest {

/// Achieved-precision summary of a continuous-query run, computed by
/// comparing the per-tick reported series X̂[t] against the oracle series
/// X[t]. Used by tests and benches to confirm that efficiency gains do
/// not silently trade away the precision contract.
struct PrecisionReport {
  double mean_abs_error = 0.0;     ///< Mean |X̂[t] − X[t]| over all ticks.
  double max_abs_error = 0.0;      ///< Worst-tick absolute error.
  /// Fraction of ticks with |X̂[t] − X[t]| ≤ ε + δ. Between updates the
  /// result legitimately lags by up to δ, and the estimate itself is only
  /// ε-accurate, so ε+δ is the per-tick contract.
  double within_tolerance_fraction = 0.0;
  size_t ticks = 0;
};

/// Compares the reported series against ground truth under `precision`.
/// Both series must be non-empty and the same length (tick-aligned).
Result<PrecisionReport> EvaluatePrecision(
    const std::vector<double>& reported, const std::vector<double>& truth,
    const PrecisionSpec& precision);

/// Like EvaluatePrecision, but with a per-tick confidence half-width
/// series instead of the uniform ε — the widened contract a fault-run
/// engine reports (EngineTickResult::ci_halfwidth). Tick i is within
/// tolerance iff |X̂[i] − X[i]| ≤ max(ε, ci[i]) + δ. All three series
/// must be tick-aligned and non-empty.
Result<PrecisionReport> EvaluatePrecisionWidened(
    const std::vector<double>& reported, const std::vector<double>& truth,
    const std::vector<double>& ci_halfwidths, const PrecisionSpec& precision);

}  // namespace digest

#endif  // DIGEST_CORE_METRICS_H_
