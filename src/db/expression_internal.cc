#include "db/expression_internal.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace digest {
namespace expression_internal {
namespace {

NodePtr MakeAttribute(size_t slot) {
  auto n = std::make_shared<Node>();
  n->kind = NodeKind::kAttribute;
  n->attr_slot = slot;
  return n;
}

NodePtr MakeBinary(NodeKind kind, NodePtr lhs, NodePtr rhs) {
  auto n = std::make_shared<Node>();
  n->kind = kind;
  n->lhs = std::move(lhs);
  n->rhs = std::move(rhs);
  return n;
}

NodePtr MakeUnary(NodeKind kind, NodePtr operand) {
  auto n = std::make_shared<Node>();
  n->kind = kind;
  n->lhs = std::move(operand);
  return n;
}

Result<NodePtr> ParseNumber(Cursor& cursor) {
  const std::string_view text = cursor.text;
  const size_t start = cursor.pos;
  size_t& pos = cursor.pos;
  while (pos < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[pos])) ||
          text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
          ((text[pos] == '+' || text[pos] == '-') && pos > start &&
           (text[pos - 1] == 'e' || text[pos - 1] == 'E')))) {
    ++pos;
  }
  const std::string token(text.substr(start, pos - start));
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end == token.c_str() || *end != '\0') {
    return Status::ParseError("malformed number '" + token + "'");
  }
  return MakeConstant(value);
}

Result<NodePtr> ParseIdentifier(Cursor& cursor,
                                std::vector<std::string>& attributes) {
  const std::string_view text = cursor.text;
  const size_t start = cursor.pos;
  size_t& pos = cursor.pos;
  while (pos < text.size() &&
         (std::isalnum(static_cast<unsigned char>(text[pos])) ||
          text[pos] == '_')) {
    ++pos;
  }
  const std::string name(text.substr(start, pos - start));
  for (size_t i = 0; i < attributes.size(); ++i) {
    if (attributes[i] == name) return MakeAttribute(i);
  }
  attributes.push_back(name);
  return MakeAttribute(attributes.size() - 1);
}

Result<NodePtr> ParseFactor(Cursor& cursor,
                            std::vector<std::string>& attributes) {
  cursor.SkipSpace();
  if (cursor.pos >= cursor.text.size()) {
    return Status::ParseError("unexpected end of expression");
  }
  const char c = cursor.text[cursor.pos];
  if (c == '-') {
    ++cursor.pos;
    DIGEST_ASSIGN_OR_RETURN(NodePtr operand, ParseFactor(cursor, attributes));
    return MakeUnary(NodeKind::kNeg, std::move(operand));
  }
  if (c == '(') {
    ++cursor.pos;
    DIGEST_ASSIGN_OR_RETURN(NodePtr inner, ParseArithmetic(cursor, attributes));
    if (!cursor.Consume(')')) {
      return Status::ParseError("missing closing parenthesis");
    }
    return inner;
  }
  if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
    return ParseNumber(cursor);
  }
  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
    return ParseIdentifier(cursor, attributes);
  }
  return Status::ParseError(std::string("unexpected character '") + c +
                            "' at offset " + std::to_string(cursor.pos));
}

Result<NodePtr> ParseTerm(Cursor& cursor,
                          std::vector<std::string>& attributes) {
  DIGEST_ASSIGN_OR_RETURN(NodePtr lhs, ParseFactor(cursor, attributes));
  while (true) {
    if (cursor.Consume('*')) {
      DIGEST_ASSIGN_OR_RETURN(NodePtr rhs, ParseFactor(cursor, attributes));
      lhs = MakeBinary(NodeKind::kMul, std::move(lhs), std::move(rhs));
    } else if (cursor.Consume('/')) {
      DIGEST_ASSIGN_OR_RETURN(NodePtr rhs, ParseFactor(cursor, attributes));
      lhs = MakeBinary(NodeKind::kDiv, std::move(lhs), std::move(rhs));
    } else {
      return lhs;
    }
  }
}

// comparison := arith ( cmpOp arith
//                     | BETWEEN arith AND arith
//                     | [NOT] IN '(' arith (',' arith)* ')' ).
// BETWEEN and IN desugar onto the comparison/boolean nodes, so the
// evaluator and printer need no new cases.
Result<NodePtr> ParseComparison(Cursor& cursor,
                                std::vector<std::string>& attributes) {
  DIGEST_ASSIGN_OR_RETURN(NodePtr lhs, ParseArithmetic(cursor, attributes));
  if (cursor.ConsumeKeyword("BETWEEN")) {
    // x BETWEEN lo AND hi  =>  (x >= lo) AND (x <= hi). The AND here
    // belongs to BETWEEN, consumed before the conjunction level runs.
    DIGEST_ASSIGN_OR_RETURN(NodePtr lo, ParseArithmetic(cursor, attributes));
    if (!cursor.ConsumeKeyword("AND")) {
      return Status::ParseError("BETWEEN requires 'AND' at offset " +
                                std::to_string(cursor.pos));
    }
    DIGEST_ASSIGN_OR_RETURN(NodePtr hi, ParseArithmetic(cursor, attributes));
    return MakeBinary(NodeKind::kAnd,
                      MakeBinary(NodeKind::kGe, lhs, std::move(lo)),
                      MakeBinary(NodeKind::kLe, lhs, std::move(hi)));
  }
  bool negated_in = false;
  {
    Cursor saved = cursor;
    if (cursor.ConsumeKeyword("NOT")) {
      if (cursor.ConsumeKeyword("IN")) {
        negated_in = true;
      } else {
        cursor = saved;  // A stray NOT here is a parse error below.
      }
    }
  }
  if (negated_in || cursor.ConsumeKeyword("IN")) {
    // x IN (a, b, c)  =>  (x = a) OR (x = b) OR (x = c).
    if (!cursor.Consume('(')) {
      return Status::ParseError("IN requires a parenthesized list");
    }
    NodePtr any;
    while (true) {
      DIGEST_ASSIGN_OR_RETURN(NodePtr item,
                              ParseArithmetic(cursor, attributes));
      NodePtr eq = MakeBinary(NodeKind::kEq, lhs, std::move(item));
      any = any == nullptr
                ? std::move(eq)
                : MakeBinary(NodeKind::kOr, std::move(any), std::move(eq));
      if (cursor.Consume(',')) continue;
      if (cursor.Consume(')')) break;
      return Status::ParseError("expected ',' or ')' in IN list");
    }
    if (negated_in) {
      return MakeUnary(NodeKind::kNot, std::move(any));
    }
    return any;
  }
  cursor.SkipSpace();
  NodeKind kind;
  const std::string_view rest = cursor.text.substr(cursor.pos);
  size_t op_len = 0;
  if (rest.rfind("<=", 0) == 0) {
    kind = NodeKind::kLe;
    op_len = 2;
  } else if (rest.rfind(">=", 0) == 0) {
    kind = NodeKind::kGe;
    op_len = 2;
  } else if (rest.rfind("<>", 0) == 0 || rest.rfind("!=", 0) == 0) {
    kind = NodeKind::kNe;
    op_len = 2;
  } else if (rest.rfind("==", 0) == 0) {
    kind = NodeKind::kEq;
    op_len = 2;
  } else if (rest.rfind("<", 0) == 0) {
    kind = NodeKind::kLt;
    op_len = 1;
  } else if (rest.rfind(">", 0) == 0) {
    kind = NodeKind::kGt;
    op_len = 1;
  } else if (rest.rfind("=", 0) == 0) {
    kind = NodeKind::kEq;
    op_len = 1;
  } else {
    return Status::ParseError("expected comparison operator at offset " +
                              std::to_string(cursor.pos));
  }
  cursor.pos += op_len;
  DIGEST_ASSIGN_OR_RETURN(NodePtr rhs, ParseArithmetic(cursor, attributes));
  return MakeBinary(kind, std::move(lhs), std::move(rhs));
}

// unit := NOT unit | '(' pred ')' | comparison.
Result<NodePtr> ParseUnit(Cursor& cursor,
                          std::vector<std::string>& attributes) {
  if (cursor.ConsumeKeyword("NOT")) {
    DIGEST_ASSIGN_OR_RETURN(NodePtr operand, ParseUnit(cursor, attributes));
    return MakeUnary(NodeKind::kNot, std::move(operand));
  }
  cursor.SkipSpace();
  if (cursor.Peek() == '(') {
    // Ambiguous: "(a > 1) AND ..." vs "(a + 1) > 2". Try the boolean
    // reading first and backtrack to the comparison reading on failure.
    // The attribute intern list is also restored on backtrack.
    Cursor saved = cursor;
    const size_t saved_attrs = attributes.size();
    cursor.Consume('(');
    Result<NodePtr> inner = ParsePredicate(cursor, attributes);
    if (inner.ok() && cursor.Consume(')')) {
      return std::move(inner).value();
    }
    cursor = saved;
    attributes.resize(saved_attrs);
  }
  return ParseComparison(cursor, attributes);
}

}  // namespace

NodePtr MakeConstant(double v) {
  auto n = std::make_shared<Node>();
  n->kind = NodeKind::kConstant;
  n->constant = v;
  return n;
}

void Cursor::SkipSpace() {
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos]))) {
    ++pos;
  }
}

bool Cursor::Consume(char c) {
  SkipSpace();
  if (pos < text.size() && text[pos] == c) {
    ++pos;
    return true;
  }
  return false;
}

char Cursor::Peek() {
  SkipSpace();
  return pos < text.size() ? text[pos] : '\0';
}

bool Cursor::ConsumeKeyword(std::string_view keyword) {
  SkipSpace();
  if (pos + keyword.size() > text.size()) return false;
  for (size_t i = 0; i < keyword.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(text[pos + i])) !=
        std::toupper(static_cast<unsigned char>(keyword[i]))) {
      return false;
    }
  }
  const size_t after = pos + keyword.size();
  if (after < text.size()) {
    const char c = text[after];
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
      return false;
    }
  }
  pos = after;
  return true;
}

Result<NodePtr> ParseArithmetic(Cursor& cursor,
                                std::vector<std::string>& attributes) {
  DIGEST_ASSIGN_OR_RETURN(NodePtr lhs, ParseTerm(cursor, attributes));
  while (true) {
    if (cursor.Consume('+')) {
      DIGEST_ASSIGN_OR_RETURN(NodePtr rhs, ParseTerm(cursor, attributes));
      lhs = MakeBinary(NodeKind::kAdd, std::move(lhs), std::move(rhs));
    } else if (cursor.Consume('-')) {
      DIGEST_ASSIGN_OR_RETURN(NodePtr rhs, ParseTerm(cursor, attributes));
      lhs = MakeBinary(NodeKind::kSub, std::move(lhs), std::move(rhs));
    } else {
      return lhs;
    }
  }
}

Result<NodePtr> ParsePredicate(Cursor& cursor,
                               std::vector<std::string>& attributes) {
  // conj (OR conj)*
  auto parse_conj = [&](auto&& self) -> Result<NodePtr> {
    (void)self;
    DIGEST_ASSIGN_OR_RETURN(NodePtr lhs, ParseUnit(cursor, attributes));
    while (cursor.ConsumeKeyword("AND")) {
      DIGEST_ASSIGN_OR_RETURN(NodePtr rhs, ParseUnit(cursor, attributes));
      lhs = MakeBinary(NodeKind::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  };
  DIGEST_ASSIGN_OR_RETURN(NodePtr lhs, parse_conj(parse_conj));
  while (cursor.ConsumeKeyword("OR")) {
    DIGEST_ASSIGN_OR_RETURN(NodePtr rhs, parse_conj(parse_conj));
    lhs = MakeBinary(NodeKind::kOr, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<double> EvaluateArithmetic(const Node& node, const Tuple& tuple,
                                  const std::vector<size_t>& attr_indices) {
  switch (node.kind) {
    case NodeKind::kConstant:
      return node.constant;
    case NodeKind::kAttribute: {
      const size_t index = attr_indices[node.attr_slot];
      if (index >= tuple.size()) {
        return Status::OutOfRange("tuple narrower than bound schema");
      }
      return tuple[index];
    }
    case NodeKind::kNeg: {
      DIGEST_ASSIGN_OR_RETURN(
          double v, EvaluateArithmetic(*node.lhs, tuple, attr_indices));
      return -v;
    }
    case NodeKind::kAdd:
    case NodeKind::kSub:
    case NodeKind::kMul:
    case NodeKind::kDiv:
      break;
    default:
      return Status::Internal("boolean node in arithmetic context");
  }
  DIGEST_ASSIGN_OR_RETURN(double lhs,
                          EvaluateArithmetic(*node.lhs, tuple, attr_indices));
  DIGEST_ASSIGN_OR_RETURN(double rhs,
                          EvaluateArithmetic(*node.rhs, tuple, attr_indices));
  double out = 0.0;
  switch (node.kind) {
    case NodeKind::kAdd:
      out = lhs + rhs;
      break;
    case NodeKind::kSub:
      out = lhs - rhs;
      break;
    case NodeKind::kMul:
      out = lhs * rhs;
      break;
    case NodeKind::kDiv:
      if (rhs == 0.0) {
        return Status::NumericError("division by zero in expression");
      }
      out = lhs / rhs;
      break;
    default:
      return Status::Internal("unreachable");
  }
  if (!std::isfinite(out)) {
    return Status::NumericError("non-finite expression result");
  }
  return out;
}

Result<bool> EvaluateBoolean(const Node& node, const Tuple& tuple,
                             const std::vector<size_t>& attr_indices) {
  switch (node.kind) {
    case NodeKind::kAnd: {
      DIGEST_ASSIGN_OR_RETURN(bool lhs,
                              EvaluateBoolean(*node.lhs, tuple, attr_indices));
      if (!lhs) return false;
      return EvaluateBoolean(*node.rhs, tuple, attr_indices);
    }
    case NodeKind::kOr: {
      DIGEST_ASSIGN_OR_RETURN(bool lhs,
                              EvaluateBoolean(*node.lhs, tuple, attr_indices));
      if (lhs) return true;
      return EvaluateBoolean(*node.rhs, tuple, attr_indices);
    }
    case NodeKind::kNot: {
      DIGEST_ASSIGN_OR_RETURN(bool v,
                              EvaluateBoolean(*node.lhs, tuple, attr_indices));
      return !v;
    }
    case NodeKind::kLt:
    case NodeKind::kLe:
    case NodeKind::kGt:
    case NodeKind::kGe:
    case NodeKind::kEq:
    case NodeKind::kNe:
      break;
    default:
      return Status::Internal("arithmetic node in boolean context");
  }
  DIGEST_ASSIGN_OR_RETURN(double lhs,
                          EvaluateArithmetic(*node.lhs, tuple, attr_indices));
  DIGEST_ASSIGN_OR_RETURN(double rhs,
                          EvaluateArithmetic(*node.rhs, tuple, attr_indices));
  switch (node.kind) {
    case NodeKind::kLt:
      return lhs < rhs;
    case NodeKind::kLe:
      return lhs <= rhs;
    case NodeKind::kGt:
      return lhs > rhs;
    case NodeKind::kGe:
      return lhs >= rhs;
    case NodeKind::kEq:
      return lhs == rhs;
    case NodeKind::kNe:
      return lhs != rhs;
    default:
      return Status::Internal("unreachable");
  }
}

void NodeToString(const Node& node, const std::vector<std::string>& attrs,
                  std::string& out) {
  switch (node.kind) {
    case NodeKind::kConstant: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%g", node.constant);
      out += buf;
      return;
    }
    case NodeKind::kAttribute:
      out += attrs[node.attr_slot];
      return;
    case NodeKind::kNeg:
      out += "(-";
      NodeToString(*node.lhs, attrs, out);
      out += ")";
      return;
    case NodeKind::kNot:
      out += "(NOT ";
      NodeToString(*node.lhs, attrs, out);
      out += ")";
      return;
    default:
      break;
  }
  const char* op = "?";
  switch (node.kind) {
    case NodeKind::kAdd:
      op = " + ";
      break;
    case NodeKind::kSub:
      op = " - ";
      break;
    case NodeKind::kMul:
      op = " * ";
      break;
    case NodeKind::kDiv:
      op = " / ";
      break;
    case NodeKind::kLt:
      op = " < ";
      break;
    case NodeKind::kLe:
      op = " <= ";
      break;
    case NodeKind::kGt:
      op = " > ";
      break;
    case NodeKind::kGe:
      op = " >= ";
      break;
    case NodeKind::kEq:
      op = " = ";
      break;
    case NodeKind::kNe:
      op = " != ";
      break;
    case NodeKind::kAnd:
      op = " AND ";
      break;
    case NodeKind::kOr:
      op = " OR ";
      break;
    default:
      break;
  }
  out += "(";
  NodeToString(*node.lhs, attrs, out);
  out += op;
  NodeToString(*node.rhs, attrs, out);
  out += ")";
}

}  // namespace expression_internal
}  // namespace digest
