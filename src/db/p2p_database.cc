#include "db/p2p_database.h"

#include <algorithm>
#include <string>

namespace digest {

Status P2PDatabase::AddNode(NodeId node) {
  if (HasNode(node)) {
    return Status::AlreadyExists("node " + std::to_string(node) +
                                 " already has a store");
  }
  stores_.emplace(node, LocalStore());
  return Status::OK();
}

Status P2PDatabase::RemoveNode(NodeId node) {
  if (stores_.erase(node) == 0) {
    return Status::NotFound("node " + std::to_string(node) + " has no store");
  }
  return Status::OK();
}

Result<LocalStore*> P2PDatabase::StoreAt(NodeId node) {
  auto it = stores_.find(node);
  if (it == stores_.end()) {
    return Status::NotFound("node " + std::to_string(node) + " has no store");
  }
  return &it->second;
}

Result<const LocalStore*> P2PDatabase::StoreAt(NodeId node) const {
  auto it = stores_.find(node);
  if (it == stores_.end()) {
    return Status::NotFound("node " + std::to_string(node) + " has no store");
  }
  return &it->second;
}

size_t P2PDatabase::ContentSize(NodeId node) const {
  auto it = stores_.find(node);
  return it == stores_.end() ? 0 : it->second.Size();
}

size_t P2PDatabase::TotalTuples() const {
  size_t total = 0;
  for (const auto& [node, store] : stores_) {
    (void)node;
    total += store.Size();
  }
  return total;
}

std::vector<NodeId> P2PDatabase::Nodes() const {
  std::vector<NodeId> out;
  out.reserve(stores_.size());
  for (const auto& [node, store] : stores_) {
    (void)store;
    out.push_back(node);
  }
  return out;
}

Result<Tuple> P2PDatabase::GetTuple(const TupleRef& ref) const {
  auto it = stores_.find(ref.node);
  if (it == stores_.end()) {
    return Status::Unavailable("node " + std::to_string(ref.node) +
                               " left the network");
  }
  Result<Tuple> tuple = it->second.Get(ref.local);
  if (!tuple.ok()) {
    return Status::NotFound("tuple was deleted from node " +
                            std::to_string(ref.node));
  }
  return tuple;
}

Result<double> P2PDatabase::ExactAggregate(const AggregateQuery& query) const {
  if (query.op == AggregateOp::kCount && query.where.IsTrivial()) {
    return static_cast<double>(TotalTuples());
  }
  Expression expr = query.expression;
  DIGEST_RETURN_IF_ERROR(expr.Bind(schema_));
  Predicate where = query.where;
  DIGEST_RETURN_IF_ERROR(where.Bind(schema_));
  double sum = 0.0;
  size_t count = 0;
  std::vector<double> values;  // Only collected for MEDIAN.
  const bool need_values = query.op == AggregateOp::kMedian;
  Status failure = Status::OK();
  for (const auto& [node, store] : stores_) {
    (void)node;
    store.ForEach([&](LocalTupleId id, const Tuple& tuple) {
      (void)id;
      if (!failure.ok()) return;
      Result<bool> qualifies = where.Evaluate(tuple);
      if (!qualifies.ok()) {
        failure = qualifies.status();
        return;
      }
      if (!*qualifies) return;
      Result<double> value = expr.Evaluate(tuple);
      if (!value.ok()) {
        failure = value.status();
        return;
      }
      sum += *value;
      ++count;
      if (need_values) values.push_back(*value);
    });
    if (!failure.ok()) return failure;
  }
  switch (query.op) {
    case AggregateOp::kSum:
      return sum;
    case AggregateOp::kCount:
      return static_cast<double>(count);
    case AggregateOp::kAvg:
      if (count == 0) {
        return Status::FailedPrecondition(
            "AVG over an empty (qualifying) relation");
      }
      return sum / static_cast<double>(count);
    case AggregateOp::kMedian: {
      if (values.empty()) {
        return Status::FailedPrecondition(
            "MEDIAN over an empty (qualifying) relation");
      }
      // Lower median (the value at rank ceil(n/2)).
      const size_t mid = (values.size() - 1) / 2;
      std::nth_element(values.begin(), values.begin() + mid, values.end());
      return values[mid];
    }
  }
  return Status::Internal("unhandled aggregate op");
}

}  // namespace digest
