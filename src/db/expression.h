#ifndef DIGEST_DB_EXPRESSION_H_
#define DIGEST_DB_EXPRESSION_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "db/schema.h"

namespace digest {

namespace expression_internal {
struct Node;
}  // namespace expression_internal

/// Arithmetic expression over the attributes of R (paper §II:
/// `op(expression)` where expression involves the attributes).
///
/// Grammar (standard precedence, left associative):
///   expr   := term (('+' | '-') term)*
///   term   := factor (('*' | '/') factor)*
///   factor := '-' factor | NUMBER | IDENTIFIER | '(' expr ')'
///
/// An Expression is parsed once, bound against a Schema (resolving
/// attribute names to indices), and then evaluated per tuple without any
/// string handling. Expressions are immutable and cheaply copyable.
class Expression {
 public:
  /// An empty expression; evaluating it fails. Placeholder until a parsed
  /// expression is assigned.
  Expression() = default;

  /// Parses expression text. Fails with kParseError on malformed input.
  static Result<Expression> Parse(std::string_view text);

  /// Convenience: an expression that is a single attribute reference.
  static Expression Attribute(const std::string& name);

  /// Convenience: a constant expression.
  static Expression Constant(double value);

  /// Names of the attributes the expression references (deduplicated,
  /// in first-appearance order).
  const std::vector<std::string>& attributes() const { return attributes_; }

  /// Resolves attribute references against `schema`. Must be called
  /// before Evaluate. Fails if a referenced attribute is missing.
  Status Bind(const Schema& schema);

  /// True once Bind succeeded (or the expression references no
  /// attributes).
  bool bound() const { return bound_; }

  /// Evaluates the expression on `tuple` (laid out per the bound schema).
  /// Fails if unbound, on division by zero, or on a non-finite result.
  Result<double> Evaluate(const Tuple& tuple) const;

  /// Canonical text form (fully parenthesized).
  std::string ToString() const;

 private:
  std::shared_ptr<const expression_internal::Node> root_;
  std::vector<std::string> attributes_;
  /// attr_indices_[i] is the schema index of attributes_[i] after Bind.
  std::vector<size_t> attr_indices_;
  bool bound_ = false;
};

}  // namespace digest

#endif  // DIGEST_DB_EXPRESSION_H_
