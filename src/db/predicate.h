#ifndef DIGEST_DB_PREDICATE_H_
#define DIGEST_DB_PREDICATE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "db/schema.h"

namespace digest {

namespace expression_internal {
struct Node;
}  // namespace expression_internal

/// Boolean selection predicate over the attributes of R — the
/// "arbitrary select predicates" extension the paper lists as future
/// work (§VIII). Used in the optional WHERE clause of aggregate queries:
/// only qualifying tuples contribute to the aggregate.
///
/// Grammar (standard precedence; arithmetic sides reuse the Expression
/// grammar):
///   pred   := conj (OR conj)*
///   conj   := unit (AND unit)*
///   unit   := NOT unit | '(' pred ')' | comparison
///   comparison := arith ('<' | '<=' | '>' | '>=' | '=' | '==' |
///                        '!=' | '<>') arith
///
/// Keywords are case-insensitive. Like Expression, a Predicate is parsed
/// once, bound against a Schema, and evaluated per tuple; immutable and
/// cheaply copyable.
class Predicate {
 public:
  /// The always-true predicate (no WHERE clause). Needs no Bind.
  Predicate() = default;

  /// Parses predicate text. Fails with kParseError on malformed input.
  static Result<Predicate> Parse(std::string_view text);

  /// True iff this is the default always-true predicate.
  bool IsTrivial() const { return root_ == nullptr; }

  /// Names of referenced attributes (deduplicated, in appearance order).
  const std::vector<std::string>& attributes() const { return attributes_; }

  /// Resolves attribute references. Must precede Evaluate (trivial
  /// predicates are always bound).
  Status Bind(const Schema& schema);

  /// True once bound (or trivial).
  bool bound() const { return bound_; }

  /// Evaluates on a tuple. Fails if unbound or on arithmetic errors in
  /// the comparison operands.
  Result<bool> Evaluate(const Tuple& tuple) const;

  /// Canonical text form ("TRUE" for the trivial predicate).
  std::string ToString() const;

 private:
  std::shared_ptr<const expression_internal::Node> root_;
  std::vector<std::string> attributes_;
  std::vector<size_t> attr_indices_;
  bool bound_ = true;  // Trivial predicate is bound by construction.
};

}  // namespace digest

#endif  // DIGEST_DB_PREDICATE_H_
