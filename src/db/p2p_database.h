#ifndef DIGEST_DB_P2P_DATABASE_H_
#define DIGEST_DB_P2P_DATABASE_H_

#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "db/local_store.h"
#include "db/query.h"
#include "db/schema.h"
#include "net/graph.h"

namespace digest {

/// Globally unique reference to a tuple: the node holding it plus the
/// node-local id. Retained (repeated-sampling) samples hold TupleRefs and
/// re-resolve them at the next occasion, detecting deletions and node
/// departures.
struct TupleRef {
  NodeId node = kInvalidNode;
  LocalTupleId local = 0;

  friend bool operator==(const TupleRef& a, const TupleRef& b) {
    return a.node == b.node && a.local == b.local;
  }
};

/// The peer-to-peer database: a single relation R horizontally
/// partitioned over the nodes of an overlay graph (paper §II).
///
/// The database does not own the Graph; the simulation owns both and
/// keeps membership in sync (AddNode/RemoveNode mirror graph churn).
/// ExactAggregate is a centralized oracle used only for ground truth in
/// tests and experiment metrics — the algorithms under study never call
/// it.
class P2PDatabase {
 public:
  explicit P2PDatabase(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }

  /// Registers an (empty) store for a node. Fails if one already exists.
  Status AddNode(NodeId node);

  /// Drops a node's store and all its tuples (the peer left with its
  /// content). Fails if the node has no store.
  Status RemoveNode(NodeId node);

  /// True iff the node has a store.
  bool HasNode(NodeId node) const {
    return stores_.find(node) != stores_.end();
  }

  /// Mutable access to a node's store; fails with kNotFound when absent.
  Result<LocalStore*> StoreAt(NodeId node);

  /// Read access to a node's store; fails with kNotFound when absent.
  Result<const LocalStore*> StoreAt(NodeId node) const;

  /// Content size m_v of the node; 0 for unknown nodes (so it can be used
  /// directly as a sampling weight function).
  size_t ContentSize(NodeId node) const;

  /// Total number of tuples in R across all nodes.
  size_t TotalTuples() const;

  /// Ids of all nodes that currently have stores.
  std::vector<NodeId> Nodes() const;

  /// Resolves a TupleRef. Fails with kUnavailable when the node left and
  /// kNotFound when the tuple was deleted.
  Result<Tuple> GetTuple(const TupleRef& ref) const;

  /// Centralized oracle evaluation of a snapshot aggregate query over the
  /// full relation (ground truth X[t]). AVG fails on an empty relation.
  Result<double> ExactAggregate(const AggregateQuery& query) const;

 private:
  Schema schema_;
  std::unordered_map<NodeId, LocalStore> stores_;
};

}  // namespace digest

#endif  // DIGEST_DB_P2P_DATABASE_H_
