#ifndef DIGEST_DB_SCHEMA_H_
#define DIGEST_DB_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace digest {

/// Schema of the single horizontally partitioned relation R (paper §II).
///
/// Attributes are numeric (double) and referenced by name from query
/// expressions; the schema maps names to dense indices so bound
/// expressions evaluate without string lookups.
class Schema {
 public:
  Schema() = default;

  /// Creates a schema from attribute names. Fails on duplicates or empty
  /// names.
  static Result<Schema> Create(std::vector<std::string> attribute_names);

  /// Number of attributes.
  size_t NumAttributes() const { return names_.size(); }

  /// Name of attribute `index` (must be < NumAttributes()).
  const std::string& AttributeName(size_t index) const {
    return names_[index];
  }

  /// Index of the attribute with this name; fails with kNotFound when
  /// absent (names are case-sensitive).
  Result<size_t> AttributeIndex(const std::string& name) const;

  /// All attribute names, in index order.
  const std::vector<std::string>& names() const { return names_; }

 private:
  std::vector<std::string> names_;
};

/// A tuple of R: one double per schema attribute.
///
/// Tuples carry no identity themselves; stores assign ids (see
/// local_store.h).
using Tuple = std::vector<double>;

}  // namespace digest

#endif  // DIGEST_DB_SCHEMA_H_
