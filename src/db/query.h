#ifndef DIGEST_DB_QUERY_H_
#define DIGEST_DB_QUERY_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "db/expression.h"
#include "db/predicate.h"

namespace digest {

/// Aggregate operations supported by the query model. AVG/SUM/COUNT are
/// the paper's §II basic model; MEDIAN is an extension in the §VIII
/// "more complex aggregates" direction — unlike MIN/MAX (whose extremes
/// uniform sampling cannot bound), quantiles admit clean sample-based
/// guarantees via order statistics, with the confidence interval
/// expressed in *rank* space (see PrecisionSpec).
enum class AggregateOp { kAvg, kSum, kCount, kMedian };

/// Canonical name of an aggregate op ("AVG", "SUM", "COUNT", "MEDIAN").
const char* AggregateOpName(AggregateOp op);

/// A parsed snapshot aggregate query
/// `SELECT op(expression) FROM R [WHERE predicate]`.
///
/// COUNT accepts `COUNT(*)` as well as `COUNT(expression)`; in both forms
/// it counts tuples (the expression is ignored for evaluation but must
/// still parse). The optional WHERE clause restricts the aggregate to
/// qualifying tuples (select predicates are the paper's §VIII extension;
/// see DESIGN.md for the estimation semantics).
struct AggregateQuery {
  AggregateOp op = AggregateOp::kAvg;
  Expression expression;
  std::string relation;
  Predicate where;  ///< Trivial (always-true) when no WHERE clause.

  /// Parses the SQL-like text form. Accepts any amount of whitespace and
  /// case-insensitive keywords. Fails with kParseError on anything else.
  static Result<AggregateQuery> Parse(std::string_view text);

  /// Canonical text form.
  std::string ToString() const;
};

}  // namespace digest

#endif  // DIGEST_DB_QUERY_H_
