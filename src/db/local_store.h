#ifndef DIGEST_DB_LOCAL_STORE_H_
#define DIGEST_DB_LOCAL_STORE_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "db/schema.h"
#include "numeric/rng.h"

namespace digest {

/// Identifier of a tuple within one node's store. Never reused by the
/// same store, so a retained sample can detect that its tuple was deleted.
using LocalTupleId = uint64_t;

/// The horizontal fragment of R stored at one peer (paper §II: R is
/// partitioned and each disjoint subset of tuples is stored at a separate
/// node; m_v is the node's content size).
///
/// Supports O(1) insert, update, erase, membership test, and uniform
/// random sampling — the local half of the two-stage sampling scheme
/// (§III).
class LocalStore {
 public:
  LocalStore() = default;

  /// Inserts a tuple, returning its fresh local id.
  LocalTupleId Insert(Tuple tuple);

  /// Replaces the whole tuple. Fails if the id is not present.
  Status Update(LocalTupleId id, Tuple tuple);

  /// Sets one attribute of a stored tuple. Fails on unknown id or
  /// attribute index out of range.
  Status UpdateAttribute(LocalTupleId id, size_t attr_index, double value);

  /// Removes a tuple. Fails if the id is not present.
  Status Erase(LocalTupleId id);

  /// True iff the tuple is present.
  bool Contains(LocalTupleId id) const {
    return index_.find(id) != index_.end();
  }

  /// Read access; fails with kNotFound for absent ids.
  Result<Tuple> Get(LocalTupleId id) const;

  /// Number of stored tuples (m_v).
  size_t Size() const { return slots_.size(); }

  /// Uniformly random stored tuple; fails when empty.
  Result<std::pair<LocalTupleId, Tuple>> UniformSample(Rng& rng) const;

  /// Calls `fn(id, tuple)` for every stored tuple (unspecified order).
  void ForEach(
      const std::function<void(LocalTupleId, const Tuple&)>& fn) const;

 private:
  struct Slot {
    LocalTupleId id;
    Tuple tuple;
  };

  std::vector<Slot> slots_;
  std::unordered_map<LocalTupleId, size_t> index_;  // id -> slot position
  LocalTupleId next_id_ = 0;
};

}  // namespace digest

#endif  // DIGEST_DB_LOCAL_STORE_H_
