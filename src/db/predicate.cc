#include "db/predicate.h"

#include <utility>

#include "db/expression_internal.h"

namespace digest {

Result<Predicate> Predicate::Parse(std::string_view text) {
  Predicate pred;
  expression_internal::Cursor cursor{text, 0};
  auto root = expression_internal::ParsePredicate(cursor, pred.attributes_);
  if (!root.ok()) return root.status();
  cursor.SkipSpace();
  if (cursor.pos != text.size()) {
    return Status::ParseError("unexpected trailing input at offset " +
                              std::to_string(cursor.pos));
  }
  pred.root_ = std::move(*root);
  pred.attr_indices_.assign(pred.attributes_.size(), 0);
  pred.bound_ = pred.attributes_.empty();
  return pred;
}

Status Predicate::Bind(const Schema& schema) {
  attr_indices_.assign(attributes_.size(), 0);
  for (size_t i = 0; i < attributes_.size(); ++i) {
    Result<size_t> index = schema.AttributeIndex(attributes_[i]);
    if (!index.ok()) return index.status();
    attr_indices_[i] = *index;
  }
  bound_ = true;
  return Status::OK();
}

Result<bool> Predicate::Evaluate(const Tuple& tuple) const {
  if (root_ == nullptr) return true;  // Trivial predicate.
  if (!bound_) {
    return Status::FailedPrecondition(
        "predicate must be bound to a schema before evaluation");
  }
  return expression_internal::EvaluateBoolean(*root_, tuple, attr_indices_);
}

std::string Predicate::ToString() const {
  if (root_ == nullptr) return "TRUE";
  std::string out;
  expression_internal::NodeToString(*root_, attributes_, out);
  return out;
}

}  // namespace digest
