#include "db/schema.h"

namespace digest {

Result<Schema> Schema::Create(std::vector<std::string> attribute_names) {
  if (attribute_names.empty()) {
    return Status::InvalidArgument("schema requires at least one attribute");
  }
  for (size_t i = 0; i < attribute_names.size(); ++i) {
    if (attribute_names[i].empty()) {
      return Status::InvalidArgument("attribute names must be non-empty");
    }
    for (size_t j = i + 1; j < attribute_names.size(); ++j) {
      if (attribute_names[i] == attribute_names[j]) {
        return Status::InvalidArgument("duplicate attribute name: " +
                                       attribute_names[i]);
      }
    }
  }
  Schema schema;
  schema.names_ = std::move(attribute_names);
  return schema;
}

Result<size_t> Schema::AttributeIndex(const std::string& name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return i;
  }
  return Status::NotFound("no attribute named '" + name + "'");
}

}  // namespace digest
