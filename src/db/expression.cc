#include "db/expression.h"

#include <utility>

#include "db/expression_internal.h"

namespace digest {

Result<Expression> Expression::Parse(std::string_view text) {
  Expression expr;
  expression_internal::Cursor cursor{text, 0};
  auto root = expression_internal::ParseArithmetic(cursor, expr.attributes_);
  if (!root.ok()) return root.status();
  cursor.SkipSpace();
  if (cursor.pos != text.size()) {
    return Status::ParseError("unexpected trailing input at offset " +
                              std::to_string(cursor.pos));
  }
  expr.root_ = std::move(*root);
  expr.attr_indices_.assign(expr.attributes_.size(), 0);
  expr.bound_ = expr.attributes_.empty();
  return expr;
}

Expression Expression::Attribute(const std::string& name) {
  // A bare identifier always parses.
  return Parse(name).value();
}

Expression Expression::Constant(double value) {
  Expression expr;
  expr.root_ = expression_internal::MakeConstant(value);
  expr.bound_ = true;
  return expr;
}

Status Expression::Bind(const Schema& schema) {
  attr_indices_.assign(attributes_.size(), 0);
  for (size_t i = 0; i < attributes_.size(); ++i) {
    Result<size_t> index = schema.AttributeIndex(attributes_[i]);
    if (!index.ok()) return index.status();
    attr_indices_[i] = *index;
  }
  bound_ = true;
  return Status::OK();
}

Result<double> Expression::Evaluate(const Tuple& tuple) const {
  if (!bound_) {
    return Status::FailedPrecondition(
        "expression must be bound to a schema before evaluation");
  }
  if (root_ == nullptr) {
    return Status::Internal("empty expression");
  }
  return expression_internal::EvaluateArithmetic(*root_, tuple,
                                                 attr_indices_);
}

std::string Expression::ToString() const {
  if (root_ == nullptr) return "<empty>";
  std::string out;
  expression_internal::NodeToString(*root_, attributes_, out);
  return out;
}

}  // namespace digest
