#ifndef DIGEST_DB_SIZE_ORACLE_H_
#define DIGEST_DB_SIZE_ORACLE_H_

#include "common/result.h"
#include "db/p2p_database.h"

namespace digest {

/// Provider of the relation cardinality N = |R|, needed to scale AVG
/// estimates into SUM/COUNT results (Ŷ_sum = N·Ŷ_avg).
///
/// The paper's experiments evaluate AVG only, where N cancels out; SUM
/// and COUNT additionally require a network-size estimation service,
/// which is outside the paper's scope. This interface is the seam for
/// plugging one in. ExactSizeOracle substitutes a ground-truth count (a
/// documented simulation substitution, see DESIGN.md); a deployment
/// would supply, e.g., a random-walk-based size estimator.
class SizeOracle {
 public:
  virtual ~SizeOracle() = default;

  /// Current estimate of |R|.
  virtual Result<double> EstimateRelationSize() = 0;
};

/// Ground-truth size oracle backed by the simulated database.
class ExactSizeOracle : public SizeOracle {
 public:
  explicit ExactSizeOracle(const P2PDatabase* db) : db_(db) {}

  Result<double> EstimateRelationSize() override {
    return static_cast<double>(db_->TotalTuples());
  }

 private:
  const P2PDatabase* db_;
};

}  // namespace digest

#endif  // DIGEST_DB_SIZE_ORACLE_H_
