#ifndef DIGEST_DB_EXPRESSION_INTERNAL_H_
#define DIGEST_DB_EXPRESSION_INTERNAL_H_

// Implementation details shared by Expression (arithmetic) and
// Predicate (boolean). Not part of the public API.

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "db/schema.h"

namespace digest {
namespace expression_internal {

enum class NodeKind {
  // Arithmetic.
  kConstant,
  kAttribute,
  kAdd,
  kSub,
  kMul,
  kDiv,
  kNeg,
  // Comparisons (boolean-valued, arithmetic children).
  kLt,
  kLe,
  kGt,
  kGe,
  kEq,
  kNe,
  // Boolean connectives (boolean children).
  kAnd,
  kOr,
  kNot,
};

struct Node {
  NodeKind kind;
  double constant = 0.0;  // kConstant
  size_t attr_slot = 0;   // kAttribute: index into the intern list.
  std::shared_ptr<const Node> lhs;
  std::shared_ptr<const Node> rhs;  // Unused by kNeg/kNot.
};

using NodePtr = std::shared_ptr<const Node>;

NodePtr MakeConstant(double v);

/// Text cursor shared by the arithmetic and predicate parsers.
struct Cursor {
  std::string_view text;
  size_t pos = 0;

  void SkipSpace();
  bool Consume(char c);
  char Peek();
  /// Case-insensitive keyword with word boundary; consumes on match.
  bool ConsumeKeyword(std::string_view keyword);
};

/// Parses an arithmetic expression at the cursor (does not require the
/// cursor to be exhausted afterwards). Attribute names are interned into
/// `attributes`.
Result<NodePtr> ParseArithmetic(Cursor& cursor,
                                std::vector<std::string>& attributes);

/// Parses a boolean predicate at the cursor.
Result<NodePtr> ParsePredicate(Cursor& cursor,
                               std::vector<std::string>& attributes);

/// Evaluates an arithmetic subtree.
Result<double> EvaluateArithmetic(const Node& node, const Tuple& tuple,
                                  const std::vector<size_t>& attr_indices);

/// Evaluates a boolean subtree.
Result<bool> EvaluateBoolean(const Node& node, const Tuple& tuple,
                             const std::vector<size_t>& attr_indices);

/// Appends the canonical (parenthesized) text form of a subtree.
void NodeToString(const Node& node, const std::vector<std::string>& attrs,
                  std::string& out);

}  // namespace expression_internal
}  // namespace digest

#endif  // DIGEST_DB_EXPRESSION_INTERNAL_H_
