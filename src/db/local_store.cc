#include "db/local_store.h"

#include <string>
#include <utility>

namespace digest {

LocalTupleId LocalStore::Insert(Tuple tuple) {
  const LocalTupleId id = next_id_++;
  index_[id] = slots_.size();
  slots_.push_back(Slot{id, std::move(tuple)});
  return id;
}

Status LocalStore::Update(LocalTupleId id, Tuple tuple) {
  auto it = index_.find(id);
  if (it == index_.end()) {
    return Status::NotFound("no tuple with local id " + std::to_string(id));
  }
  slots_[it->second].tuple = std::move(tuple);
  return Status::OK();
}

Status LocalStore::UpdateAttribute(LocalTupleId id, size_t attr_index,
                                   double value) {
  auto it = index_.find(id);
  if (it == index_.end()) {
    return Status::NotFound("no tuple with local id " + std::to_string(id));
  }
  Tuple& tuple = slots_[it->second].tuple;
  if (attr_index >= tuple.size()) {
    return Status::OutOfRange("attribute index out of range");
  }
  tuple[attr_index] = value;
  return Status::OK();
}

Status LocalStore::Erase(LocalTupleId id) {
  auto it = index_.find(id);
  if (it == index_.end()) {
    return Status::NotFound("no tuple with local id " + std::to_string(id));
  }
  const size_t pos = it->second;
  index_.erase(it);
  if (pos + 1 != slots_.size()) {
    slots_[pos] = std::move(slots_.back());
    index_[slots_[pos].id] = pos;
  }
  slots_.pop_back();
  return Status::OK();
}

Result<Tuple> LocalStore::Get(LocalTupleId id) const {
  auto it = index_.find(id);
  if (it == index_.end()) {
    return Status::NotFound("no tuple with local id " + std::to_string(id));
  }
  return slots_[it->second].tuple;
}

Result<std::pair<LocalTupleId, Tuple>> LocalStore::UniformSample(
    Rng& rng) const {
  if (slots_.empty()) {
    return Status::FailedPrecondition("store is empty");
  }
  const Slot& slot = slots_[rng.NextIndex(slots_.size())];
  return std::make_pair(slot.id, slot.tuple);
}

void LocalStore::ForEach(
    const std::function<void(LocalTupleId, const Tuple&)>& fn) const {
  for (const Slot& slot : slots_) {
    fn(slot.id, slot.tuple);
  }
}

}  // namespace digest
