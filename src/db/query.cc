#include "db/query.h"

#include <cctype>

#include "common/strings.h"

namespace digest {
namespace {

// Scans `text` from `pos` for a case-insensitive keyword followed by a
// word boundary. On success advances pos past the keyword.
bool ConsumeKeyword(std::string_view text, size_t& pos,
                    std::string_view keyword) {
  size_t p = pos;
  while (p < text.size() && std::isspace(static_cast<unsigned char>(text[p]))) {
    ++p;
  }
  if (p + keyword.size() > text.size()) return false;
  if (!EqualsIgnoreCase(text.substr(p, keyword.size()), keyword)) {
    return false;
  }
  const size_t after = p + keyword.size();
  if (after < text.size()) {
    const char c = text[after];
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') return false;
  }
  pos = after;
  return true;
}

void SkipSpace(std::string_view text, size_t& pos) {
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos]))) {
    ++pos;
  }
}

}  // namespace

const char* AggregateOpName(AggregateOp op) {
  switch (op) {
    case AggregateOp::kAvg:
      return "AVG";
    case AggregateOp::kSum:
      return "SUM";
    case AggregateOp::kCount:
      return "COUNT";
    case AggregateOp::kMedian:
      return "MEDIAN";
  }
  return "?";
}

Result<AggregateQuery> AggregateQuery::Parse(std::string_view text) {
  size_t pos = 0;
  if (!ConsumeKeyword(text, pos, "SELECT")) {
    return Status::ParseError("query must begin with SELECT");
  }
  AggregateQuery query;
  if (ConsumeKeyword(text, pos, "AVG")) {
    query.op = AggregateOp::kAvg;
  } else if (ConsumeKeyword(text, pos, "SUM")) {
    query.op = AggregateOp::kSum;
  } else if (ConsumeKeyword(text, pos, "COUNT")) {
    query.op = AggregateOp::kCount;
  } else if (ConsumeKeyword(text, pos, "MEDIAN")) {
    query.op = AggregateOp::kMedian;
  } else {
    return Status::ParseError(
        "expected aggregate op AVG, SUM, COUNT, or MEDIAN");
  }
  SkipSpace(text, pos);
  if (pos >= text.size() || text[pos] != '(') {
    return Status::ParseError("expected '(' after aggregate op");
  }
  ++pos;
  // Find the matching close parenthesis.
  size_t depth = 1;
  const size_t expr_start = pos;
  while (pos < text.size() && depth > 0) {
    if (text[pos] == '(') ++depth;
    if (text[pos] == ')') --depth;
    ++pos;
  }
  if (depth != 0) {
    return Status::ParseError("unbalanced parentheses in aggregate argument");
  }
  const std::string_view expr_text =
      text.substr(expr_start, pos - 1 - expr_start);
  const std::string_view trimmed = StripWhitespace(expr_text);
  if (query.op == AggregateOp::kCount && trimmed == "*") {
    query.expression = Expression::Constant(1.0);
  } else {
    DIGEST_ASSIGN_OR_RETURN(query.expression, Expression::Parse(trimmed));
  }
  if (!ConsumeKeyword(text, pos, "FROM")) {
    return Status::ParseError("expected FROM after aggregate");
  }
  SkipSpace(text, pos);
  const size_t rel_start = pos;
  while (pos < text.size() &&
         (std::isalnum(static_cast<unsigned char>(text[pos])) ||
          text[pos] == '_')) {
    ++pos;
  }
  if (pos == rel_start) {
    return Status::ParseError("expected relation name after FROM");
  }
  query.relation = std::string(text.substr(rel_start, pos - rel_start));
  if (ConsumeKeyword(text, pos, "WHERE")) {
    std::string_view rest = text.substr(pos);
    // Allow one trailing semicolon after the predicate.
    const std::string_view trimmed = StripWhitespace(rest);
    const std::string_view pred_text =
        (!trimmed.empty() && trimmed.back() == ';')
            ? StripWhitespace(trimmed.substr(0, trimmed.size() - 1))
            : trimmed;
    if (pred_text.empty()) {
      return Status::ParseError("empty WHERE clause");
    }
    DIGEST_ASSIGN_OR_RETURN(query.where, Predicate::Parse(pred_text));
    return query;
  }
  SkipSpace(text, pos);
  if (pos != text.size() && text[pos] != ';') {
    return Status::ParseError("unexpected trailing input after relation");
  }
  return query;
}

std::string AggregateQuery::ToString() const {
  std::string out = "SELECT ";
  out += AggregateOpName(op);
  out += "(";
  out += expression.ToString();
  out += ") FROM ";
  out += relation;
  if (!where.IsTrivial()) {
    out += " WHERE ";
    out += where.ToString();
  }
  return out;
}

}  // namespace digest
