#include "obs/exporters.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "common/strings.h"

namespace digest {
namespace obs {
namespace {

std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string Num(uint64_t v) { return std::to_string(v); }
std::string Num(int64_t v) { return std::to_string(v); }

void Field(std::string* out, const char* key, const std::string& value,
           bool quote = false) {
  out->push_back(',');
  out->push_back('"');
  out->append(key);
  out->append("\":");
  if (quote) {
    out->push_back('"');
    AppendJsonEscaped(out, value);
    out->push_back('"');
  } else {
    out->append(value);
  }
}

void Field(std::string* out, const char* key, bool value) {
  // Explicit std::string: a bare string literal would convert
  // pointer-to-bool and re-select this overload forever.
  Field(out, key, std::string(value ? "true" : "false"));
}

/// Serializes the payload-specific fields of one event.
struct JsonFields {
  std::string* out;

  void operator()(const RunBeginEvent& e) const {
    Field(out, "label", e.label, /*quote=*/true);
  }
  void operator()(const TickEvent& e) const {
    Field(out, "snapshot_executed", e.snapshot_executed);
    Field(out, "degraded", e.degraded);
    Field(out, "result_updated", e.result_updated);
    Field(out, "reported", Num(e.reported));
    Field(out, "ci_halfwidth", Num(e.ci_halfwidth));
  }
  void operator()(const GapPredictedEvent& e) const {
    Field(out, "gap", Num(e.gap));
    Field(out, "next_tick", Num(e.next_tick));
    Field(out, "poly_order", Num(e.poly_order));
    Field(out, "predicted_drift", Num(e.predicted_drift));
    Field(out, "strict", e.strict);
  }
  void operator()(const SnapshotEvent& e) const {
    Field(out, "value", Num(e.value));
    Field(out, "ci_halfwidth", Num(e.ci_halfwidth));
    Field(out, "total_samples", Num(e.total_samples));
    Field(out, "fresh_samples", Num(e.fresh_samples));
    Field(out, "retained_samples", Num(e.retained_samples));
    Field(out, "degraded", e.degraded);
  }
  void operator()(const SnapshotSkippedEvent& e) const {
    Field(out, "next_snapshot_tick", Num(e.next_snapshot_tick));
  }
  void operator()(const SampleBudgetEvent& e) const {
    Field(out, "repeated", e.repeated);
    Field(out, "rho_hat", Num(e.rho_hat));
    Field(out, "sigma_hat", Num(e.sigma_hat));
    Field(out, "planned_total", Num(e.planned_total));
    Field(out, "planned_retained", Num(e.planned_retained));
  }
  void operator()(const CiWidenedEvent& e) const {
    Field(out, "from", Num(e.from));
    Field(out, "to", Num(e.to));
  }
  void operator()(const DegradedFallbackEvent& e) const {
    Field(out, "retained_pool", e.retained_pool);
  }
  void operator()(const WalkBatchEvent& e) const {
    Field(out, "agents", Num(e.agents));
    Field(out, "warm", Num(e.warm));
    Field(out, "cold_steps", Num(e.cold_steps));
    Field(out, "warm_steps", Num(e.warm_steps));
    Field(out, "budget", Num(e.budget));
  }
  void operator()(const WalkBatchDoneEvent& e) const {
    Field(out, "samples", Num(e.samples));
    Field(out, "attempts", Num(e.attempts));
    Field(out, "retries", Num(e.retries));
    Field(out, "losses", Num(e.losses));
    Field(out, "drops", Num(e.drops));
    Field(out, "stalled_steps", Num(e.stalled_steps));
    Field(out, "hedges", Num(e.hedges));
    Field(out, "hedge_wins", Num(e.hedge_wins));
  }
  void operator()(const HopBudgetExhaustedEvent& e) const {
    Field(out, "attempts", Num(e.attempts));
    Field(out, "budget", Num(e.budget));
  }
  void operator()(const AgentRestartEvent& e) const {
    Field(out, "agent_index", Num(e.agent_index));
  }
  void operator()(const FaultLossEvent& e) const {
    Field(out, "from", Num(e.from));
    Field(out, "to", Num(e.to));
  }
  void operator()(const FaultStallEvent& e) const {
    Field(out, "stalled_steps", Num(e.stalled_steps));
  }
  void operator()(const SupervisorStateEvent& e) const {
    Field(out, "from", e.from, /*quote=*/true);
    Field(out, "to", e.to, /*quote=*/true);
    Field(out, "outcome", e.outcome, /*quote=*/true);
    Field(out, "consecutive", Num(e.consecutive));
  }
  void operator()(const PartialSnapshotEvent& e) const {
    Field(out, "collected", Num(e.collected));
    Field(out, "planned", Num(e.planned));
    Field(out, "ci_halfwidth", Num(e.ci_halfwidth));
  }
  void operator()(const WalkHedgedEvent& e) const {
    Field(out, "agent_index", Num(e.agent_index));
    Field(out, "attempts", Num(e.attempts));
    Field(out, "threshold", Num(e.threshold));
  }
  void operator()(const CheckpointEvent& e) const {
    Field(out, "bytes", Num(e.bytes));
    Field(out, "last_tick", Num(e.last_tick));
  }
  void operator()(const RestoreEvent& e) const {
    Field(out, "bytes", Num(e.bytes));
    Field(out, "last_tick", Num(e.last_tick));
  }
  void operator()(const AuditCoverageEvent& e) const {
    Field(out, "estimate", Num(e.estimate));
    Field(out, "truth", Num(e.truth));
    Field(out, "ci_halfwidth", Num(e.ci_halfwidth));
    Field(out, "hit", e.hit);
    Field(out, "cause", e.cause, /*quote=*/true);
    Field(out, "occasions", Num(e.occasions));
    Field(out, "misses", Num(e.misses));
  }
  void operator()(const AuditBudgetEvent& e) const {
    Field(out, "burn", Num(e.burn));
    Field(out, "remaining", Num(e.remaining));
    Field(out, "occasions", Num(e.occasions));
    Field(out, "misses", Num(e.misses));
  }
  void operator()(const AuditDriftEvent& e) const {
    Field(out, "detector", e.detector, /*quote=*/true);
    Field(out, "ewma", Num(e.ewma));
    Field(out, "cusum_pos", Num(e.cusum_pos));
    Field(out, "cusum_neg", Num(e.cusum_neg));
    Field(out, "threshold", Num(e.threshold));
    Field(out, "streak", Num(e.streak));
    Field(out, "flip", e.flip);
  }
  void operator()(const AuditSloEvent& e) const {
    Field(out, "label", e.label, /*quote=*/true);
    Field(out, "p", Num(e.p));
    Field(out, "epsilon", Num(e.epsilon));
    Field(out, "delta", Num(e.delta));
    Field(out, "occasions", Num(e.occasions));
    Field(out, "hits", Num(e.hits));
    Field(out, "misses", Num(e.misses));
    Field(out, "coverage", Num(e.coverage));
    Field(out, "coverage_floor", Num(e.coverage_floor));
    Field(out, "coverage_ok", e.coverage_ok);
    Field(out, "delta_ticks", Num(e.delta_ticks));
    Field(out, "delta_misses", Num(e.delta_misses));
    Field(out, "delta_compliance", Num(e.delta_compliance));
    Field(out, "budget_burn", Num(e.budget_burn));
    Field(out, "budget_remaining", Num(e.budget_remaining));
  }
  void operator()(const WalkMixingEvent& e) const {
    Field(out, "walks", Num(e.walks));
    Field(out, "steps", Num(e.steps));
    Field(out, "lag1_autocorr", Num(e.lag1_autocorr));
    Field(out, "ess", Num(e.ess));
    Field(out, "rhat", Num(e.rhat));
  }
  void operator()(const StationaryGapEvent& e) const {
    Field(out, "tv_distance", Num(e.tv_distance));
    Field(out, "chi_square", Num(e.chi_square));
    Field(out, "live_peers", Num(e.live_peers));
    Field(out, "visits", Num(e.visits));
    Field(out, "dropped_dead_visits", Num(e.dropped_dead_visits));
    Field(out, "breach", e.breach);
  }
  void operator()(const PeerLoadEvent& e) const {
    Field(out, "peers", Num(e.peers));
    Field(out, "links", Num(e.links));
    Field(out, "hot_peer", Num(e.hot_peer));
    Field(out, "max_load", Num(e.max_load));
    Field(out, "mean_load", Num(e.mean_load));
    Field(out, "hot", e.hot);
  }
  void operator()(const AcceptanceRateEvent& e) const {
    Field(out, "proposals", Num(e.proposals));
    Field(out, "accepted", Num(e.accepted));
    Field(out, "rate", Num(e.rate));
  }
  void operator()(const PeerSuspectEvent& e) const {
    Field(out, "peer", Num(e.peer));
    Field(out, "phi", Num(e.phi));
    Field(out, "failures", Num(e.failures));
  }
  void operator()(const BreakerTransitionEvent& e) const {
    Field(out, "peer", Num(e.peer));
    Field(out, "from", e.from, /*quote=*/true);
    Field(out, "to", e.to, /*quote=*/true);
    Field(out, "phi", Num(e.phi));
  }
  void operator()(const PartitionBeginEvent& e) const {
    Field(out, "episode", Num(e.episode));
    Field(out, "components", Num(e.components));
    Field(out, "length", Num(e.length));
  }
  void operator()(const PartitionEndEvent& e) const {
    Field(out, "episode", Num(e.episode));
  }
  void operator()(const SnapshotCoalescedEvent& e) const {
    Field(out, "queries", Num(e.queries));
    Field(out, "shared_samples", Num(e.shared_samples));
    Field(out, "consumed_samples", Num(e.consumed_samples));
  }
};

/// Which Chrome phase an event renders as: engine ticks are spans;
/// sampler-level activity renders as nested slices; engine decisions as
/// thread-scoped instants.
enum class ChromeShape { kTickSpan, kNestedSlice, kInstant };

ChromeShape ShapeOf(const EventPayload& payload) {
  if (std::holds_alternative<TickEvent>(payload)) {
    return ChromeShape::kTickSpan;
  }
  if (std::holds_alternative<WalkBatchEvent>(payload) ||
      std::holds_alternative<WalkBatchDoneEvent>(payload) ||
      std::holds_alternative<HopBudgetExhaustedEvent>(payload) ||
      std::holds_alternative<AgentRestartEvent>(payload) ||
      std::holds_alternative<FaultLossEvent>(payload) ||
      std::holds_alternative<FaultStallEvent>(payload) ||
      std::holds_alternative<WalkHedgedEvent>(payload) ||
      std::holds_alternative<WalkMixingEvent>(payload) ||
      std::holds_alternative<StationaryGapEvent>(payload) ||
      std::holds_alternative<PeerLoadEvent>(payload) ||
      std::holds_alternative<AcceptanceRateEvent>(payload) ||
      std::holds_alternative<PeerSuspectEvent>(payload) ||
      std::holds_alternative<BreakerTransitionEvent>(payload)) {
    return ChromeShape::kNestedSlice;
  }
  return ChromeShape::kInstant;
}

void AppendChromeArgs(std::string* out, const TraceEvent& event) {
  out->append("\"args\":{\"seq\":");
  out->append(std::to_string(event.seq));
  if (event.lane >= 0) {
    out->append(",\"lane\":");
    out->append(std::to_string(event.lane));
  }
  std::string fields;
  std::visit(JsonFields{&fields}, event.payload);
  out->append(fields);  // Leading commas already in place.
  out->push_back('}');
}

}  // namespace

std::string EventToJsonLine(const TraceEvent& event) {
  std::string out = "{\"seq\":";
  out += std::to_string(event.seq);
  out += ",\"t\":";
  out += std::to_string(event.sim_time);
  // The deterministic execution lane (walk index) appears only on
  // events the parallel sampler stamped, so serial traces stay
  // byte-identical to the pre-parallel format.
  if (event.lane >= 0) {
    out += ",\"lane\":";
    out += std::to_string(event.lane);
  }
  out += ",\"event\":\"";
  out += EventName(event.payload);
  out += "\"";
  std::visit(JsonFields{&out}, event.payload);
  out += "}";
  return out;
}

namespace {

/// Appends the wall-clock profile as JSONL: one `prof_phase` line per
/// recorded phase (aggregates, not events — no seq/t stamps).
void AppendProfJsonLines(std::string* out, const prof::Profiler& profiler) {
  for (size_t i = 0; i < prof::kNumPhases; ++i) {
    const auto phase = static_cast<prof::Phase>(i);
    const prof::PhaseStats& s = profiler.stats(phase);
    if (s.calls == 0 && s.items == 0) continue;
    *out += "{\"event\":\"prof_phase\",\"phase\":\"";
    *out += prof::PhaseName(phase);
    *out += "\",\"calls\":";
    *out += std::to_string(s.calls);
    *out += ",\"total_ns\":";
    *out += std::to_string(s.total_ns);
    *out += ",\"min_ns\":";
    *out += std::to_string(s.min_ns);
    *out += ",\"max_ns\":";
    *out += std::to_string(s.max_ns);
    *out += ",\"items\":";
    *out += std::to_string(s.items);
    *out += "}\n";
  }
}

}  // namespace

std::string RenderJsonLines(const std::vector<TraceEvent>& events,
                            const prof::Profiler* profiler) {
  std::string out;
  for (const TraceEvent& event : events) {
    out += EventToJsonLine(event);
    out.push_back('\n');
  }
  if (profiler != nullptr) AppendProfJsonLines(&out, *profiler);
  return out;
}

std::string RenderChromeTrace(const std::vector<TraceEvent>& events,
                              const prof::Profiler* profiler) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& obj) {
    if (!first) out.push_back(',');
    first = false;
    out.append(obj);
  };

  // Each RunBeginEvent opens a new Chrome "process"; events before the
  // first marker share pid 1.
  int pid = 1;
  bool named_default = false;
  // Sub-tick placement: the i-th non-tick event of a (pid, sim_time)
  // pair sits at ts = t·1000 + 10·(i+1) µs, inside the tick's
  // [t·1000, t·1000+1000) span, in seq order. Deterministic by
  // construction.
  std::map<std::pair<int, int64_t>, int> slot;

  for (const TraceEvent& event : events) {
    if (const auto* run = std::get_if<RunBeginEvent>(&event.payload)) {
      pid = named_default || pid > 1 ? pid + 1 : pid;
      named_default = true;
      std::string meta = "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
      meta += std::to_string(pid);
      meta += ",\"tid\":1,\"args\":{\"name\":\"";
      AppendJsonEscaped(&meta, run->label);
      meta += "\"}}";
      emit(meta);
      continue;
    }
    const ChromeShape shape = ShapeOf(event.payload);
    const int64_t base_ts = event.sim_time * 1000;
    std::string obj = "{\"name\":\"";
    obj += EventName(event.payload);
    obj += "\",\"cat\":\"digest\",\"pid\":";
    obj += std::to_string(pid);
    obj += ",\"tid\":1,";
    switch (shape) {
      case ChromeShape::kTickSpan: {
        obj += "\"ph\":\"X\",\"ts\":";
        obj += std::to_string(base_ts);
        obj += ",\"dur\":1000,";
        break;
      }
      case ChromeShape::kNestedSlice:
      case ChromeShape::kInstant: {
        int& idx = slot[{pid, event.sim_time}];
        const int64_t ts = base_ts + 10 * std::min(idx + 1, 98);
        ++idx;
        if (shape == ChromeShape::kNestedSlice) {
          obj += "\"ph\":\"X\",\"ts\":";
          obj += std::to_string(ts);
          obj += ",\"dur\":8,";
        } else {
          obj += "\"ph\":\"i\",\"s\":\"t\",\"ts\":";
          obj += std::to_string(ts);
          obj += ",";
        }
        break;
      }
    }
    AppendChromeArgs(&obj, event);
    obj.push_back('}');
    emit(obj);
  }

  if (profiler != nullptr && !profiler->spans().empty()) {
    // The wall track: one extra process carrying real-time spans. Spans
    // were recorded in completion order (RAII destruction); sort by
    // start so the track reads left-to-right and timestamps are
    // monotone (stable sort keeps nesting order for equal starts).
    const int wall_pid = pid + 1;
    std::string meta = "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
    meta += std::to_string(wall_pid);
    meta += ",\"tid\":1,\"args\":{\"name\":\"wall-clock profiler\"}}";
    emit(meta);
    std::vector<prof::WallSpan> spans = profiler->spans();
    std::stable_sort(spans.begin(), spans.end(),
                     [](const prof::WallSpan& a, const prof::WallSpan& b) {
                       return a.start_ns < b.start_ns;
                     });
    for (const prof::WallSpan& span : spans) {
      std::string obj = "{\"name\":\"";
      obj += prof::PhaseName(span.phase);
      obj += "\",\"cat\":\"wall\",\"ph\":\"X\",\"pid\":";
      obj += std::to_string(wall_pid);
      obj += ",\"tid\":1,\"ts\":";
      obj += std::to_string(span.start_ns / 1000);
      obj += ",\"dur\":";
      obj += std::to_string(span.dur_ns / 1000);
      obj += ",\"args\":{\"dur_ns\":";
      obj += std::to_string(span.dur_ns);
      obj += ",\"items\":";
      obj += std::to_string(span.items);
      obj += "}}";
      emit(obj);
    }
  }

  out += "]}";
  return out;
}

std::string RenderMetricsJson(const Registry& registry,
                              const prof::Profiler* profiler) {
  std::string out = registry.ToJson();
  if (profiler == nullptr) return out;
  // Splice the prof object into the registry dump's top-level object.
  out.pop_back();  // Trailing '}'.
  out += ",\"prof\":";
  out += profiler->ToJson();
  out.push_back('}');
  return out;
}

Status WriteFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Unavailable("cannot open '" + path + "' for writing");
  }
  std::fwrite(content.data(), 1, content.size(), f);
  if (std::fclose(f) != 0) {
    return Status::Unavailable("error closing '" + path + "'");
  }
  return Status::OK();
}

Status WriteJsonLines(const std::vector<TraceEvent>& events,
                      const std::string& path,
                      const prof::Profiler* profiler) {
  return WriteFile(path, RenderJsonLines(events, profiler));
}

Status WriteChromeTrace(const std::vector<TraceEvent>& events,
                        const std::string& path,
                        const prof::Profiler* profiler) {
  return WriteFile(path, RenderChromeTrace(events, profiler));
}

std::string RenderSummary(const Registry& registry) {
  std::string out;
  auto section = [&](const char* title) {
    out += "== ";
    out += title;
    out += " ==\n";
  };
  auto rows = [&](std::vector<std::pair<std::string, std::string>> kv) {
    size_t width = 0;
    for (const auto& [k, v] : kv) width = std::max(width, k.size());
    for (const auto& [k, v] : kv) {
      out += "  ";
      out += k;
      out.append(width - k.size() + 2, ' ');
      out += v;
      out.push_back('\n');
    }
  };
  if (!registry.counters().empty()) {
    section("counters");
    std::vector<std::pair<std::string, std::string>> kv;
    for (const auto& [key, counter] : registry.counters()) {
      kv.emplace_back(key, std::to_string(counter->value()));
    }
    rows(std::move(kv));
  }
  if (!registry.gauges().empty()) {
    section("gauges");
    std::vector<std::pair<std::string, std::string>> kv;
    for (const auto& [key, gauge] : registry.gauges()) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.6g", gauge->value());
      kv.emplace_back(key, buf);
    }
    rows(std::move(kv));
  }
  if (!registry.histograms().empty()) {
    section("histograms");
    std::vector<std::pair<std::string, std::string>> kv;
    for (const auto& [key, hist] : registry.histograms()) {
      char buf[128];
      std::snprintf(buf, sizeof(buf), "count=%llu mean=%.6g sum=%.6g",
                    static_cast<unsigned long long>(hist->count()),
                    hist->Mean(), hist->sum());
      kv.emplace_back(key, buf);
    }
    rows(std::move(kv));
  }
  if (out.empty()) out = "(registry is empty)\n";
  return out;
}

}  // namespace obs
}  // namespace digest
