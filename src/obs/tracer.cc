#include "obs/tracer.h"

namespace digest {
namespace obs {

namespace {

struct NameVisitor {
  const char* operator()(const RunBeginEvent&) const { return "run_begin"; }
  const char* operator()(const TickEvent&) const { return "tick"; }
  const char* operator()(const GapPredictedEvent&) const {
    return "gap_predicted";
  }
  const char* operator()(const SnapshotEvent&) const { return "snapshot"; }
  const char* operator()(const SnapshotSkippedEvent&) const {
    return "snapshot_skipped";
  }
  const char* operator()(const SampleBudgetEvent&) const {
    return "sample_budget";
  }
  const char* operator()(const CiWidenedEvent&) const { return "ci_widened"; }
  const char* operator()(const DegradedFallbackEvent&) const {
    return "degraded_fallback";
  }
  const char* operator()(const WalkBatchEvent&) const { return "walk_batch"; }
  const char* operator()(const WalkBatchDoneEvent&) const {
    return "walk_batch_done";
  }
  const char* operator()(const HopBudgetExhaustedEvent&) const {
    return "hop_budget_exhausted";
  }
  const char* operator()(const AgentRestartEvent&) const {
    return "agent_restart";
  }
  const char* operator()(const FaultLossEvent&) const { return "fault_loss"; }
  const char* operator()(const FaultStallEvent&) const {
    return "fault_stall";
  }
  const char* operator()(const SupervisorStateEvent&) const {
    return "supervisor_state";
  }
  const char* operator()(const PartialSnapshotEvent&) const {
    return "partial_snapshot";
  }
  const char* operator()(const WalkHedgedEvent&) const {
    return "walk_hedged";
  }
  const char* operator()(const CheckpointEvent&) const { return "checkpoint"; }
  const char* operator()(const RestoreEvent&) const { return "restore"; }
  const char* operator()(const AuditCoverageEvent&) const {
    return "audit_coverage";
  }
  const char* operator()(const AuditBudgetEvent&) const {
    return "audit_budget";
  }
  const char* operator()(const AuditDriftEvent&) const {
    return "audit_drift";
  }
  const char* operator()(const AuditSloEvent&) const { return "audit_slo"; }
  const char* operator()(const WalkMixingEvent&) const {
    return "walk_mixing";
  }
  const char* operator()(const StationaryGapEvent&) const {
    return "stationary_gap";
  }
  const char* operator()(const PeerLoadEvent&) const { return "peer_load"; }
  const char* operator()(const AcceptanceRateEvent&) const {
    return "acceptance_rate";
  }
  const char* operator()(const PeerSuspectEvent&) const {
    return "peer_suspect";
  }
  const char* operator()(const BreakerTransitionEvent&) const {
    return "breaker_transition";
  }
  const char* operator()(const PartitionBeginEvent&) const {
    return "partition_begin";
  }
  const char* operator()(const PartitionEndEvent&) const {
    return "partition_end";
  }
  const char* operator()(const SnapshotCoalescedEvent&) const {
    return "snapshot_coalesced";
  }
};

}  // namespace

const char* EventName(const EventPayload& payload) {
  return std::visit(NameVisitor{}, payload);
}

}  // namespace obs
}  // namespace digest
