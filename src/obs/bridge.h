#ifndef DIGEST_OBS_BRIDGE_H_
#define DIGEST_OBS_BRIDGE_H_

#include "net/message_meter.h"
#include "obs/metrics.h"

namespace digest {
namespace obs {

// Bridges the pre-existing ad-hoc instrumentation into the registry so
// message categories appear alongside the obs-native metrics under one
// naming scheme. (The EngineStats bridge lives with EngineStats in
// core/engine.h — core depends on obs, not the other way around.)

/// Mirrors every MessageMeter category into `net.messages{category=…}`
/// counters plus the derived `net.messages_total` /
/// `net.fault_overhead` counters. Increments (never overwrites), so
/// bridging several meters into one registry accumulates, matching
/// counter semantics.
void BridgeMessageMeter(const MessageMeter& meter, Registry* registry);

}  // namespace obs
}  // namespace digest

#endif  // DIGEST_OBS_BRIDGE_H_
