#ifndef DIGEST_OBS_EXPORTERS_H_
#define DIGEST_OBS_EXPORTERS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "prof/profiler.h"

namespace digest {
namespace obs {

// Trace/metric exporters. All output is a pure function of the recorded
// events (simulated time + sequence numbers, fixed "%.17g" float
// formatting, deterministic ordering), so two same-seed runs export
// byte-identical files — asserted by tests/obs_determinism_test.cc.
//
// Each renderer optionally accepts a wall-clock prof::Profiler. A null
// profiler leaves the output byte-identical to the profiler-less form;
// a non-null one appends a clearly separated, wall-clock section (the
// Chrome "wall" track, JSONL `prof_phase` lines, the metrics `prof`
// object) that is *not* expected to be deterministic across runs.

/// One event as a single-line JSON object: `{"seq":N,"t":N,"event":
/// "<name>", ...payload fields}`. See docs/OBSERVABILITY.md for the
/// per-event schema; tools/check_trace.py validates it.
std::string EventToJsonLine(const TraceEvent& event);

/// The whole trace in JSON Lines form (one EventToJsonLine per line).
/// With a profiler, one `{"event":"prof_phase",...}` line per recorded
/// phase is appended after all trace events (no seq/t stamps — these
/// lines are wall-clock aggregates, not simulation events).
std::string RenderJsonLines(const std::vector<TraceEvent>& events,
                            const prof::Profiler* profiler = nullptr);

/// The whole trace in Chrome trace_event format (a JSON object with a
/// `traceEvents` array), loadable in Perfetto / chrome://tracing:
/// each RunBeginEvent opens a new process; engine ticks are rendered as
/// 1 ms spans at ts = sim_time * 1000 µs with walk/fault events nested
/// under the tick they occurred in.
///
/// With a profiler, a separate process named "wall-clock profiler"
/// carries the captured wall spans (ts/dur in real µs since the
/// profiler's epoch, sorted by start time, cat "wall") — the second
/// track that shows where real time went next to the simulated one.
std::string RenderChromeTrace(const std::vector<TraceEvent>& events,
                              const prof::Profiler* profiler = nullptr);

/// Registry dump plus an optional wall-clock `prof` section:
/// `{"counters":...,"gauges":...,"histograms":...,"prof":{...}}`.
/// With a null profiler this is exactly Registry::ToJson().
std::string RenderMetricsJson(const Registry& registry,
                              const prof::Profiler* profiler = nullptr);

/// Writes `content` to `path` (the render helpers above produce it).
Status WriteFile(const std::string& path, const std::string& content);

Status WriteJsonLines(const std::vector<TraceEvent>& events,
                      const std::string& path,
                      const prof::Profiler* profiler = nullptr);
Status WriteChromeTrace(const std::vector<TraceEvent>& events,
                        const std::string& path,
                        const prof::Profiler* profiler = nullptr);

/// Human-readable end-of-run summary of a registry: aligned tables of
/// counters, gauges, and histogram digests.
std::string RenderSummary(const Registry& registry);

}  // namespace obs
}  // namespace digest

#endif  // DIGEST_OBS_EXPORTERS_H_
