#ifndef DIGEST_OBS_EXPORTERS_H_
#define DIGEST_OBS_EXPORTERS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "obs/metrics.h"
#include "obs/tracer.h"

namespace digest {
namespace obs {

// Trace/metric exporters. All output is a pure function of the recorded
// events (simulated time + sequence numbers, fixed "%.17g" float
// formatting, deterministic ordering), so two same-seed runs export
// byte-identical files — asserted by tests/obs_determinism_test.cc.

/// One event as a single-line JSON object: `{"seq":N,"t":N,"event":
/// "<name>", ...payload fields}`. See docs/OBSERVABILITY.md for the
/// per-event schema; tools/check_trace.py validates it.
std::string EventToJsonLine(const TraceEvent& event);

/// The whole trace in JSON Lines form (one EventToJsonLine per line).
std::string RenderJsonLines(const std::vector<TraceEvent>& events);

/// The whole trace in Chrome trace_event format (a JSON object with a
/// `traceEvents` array), loadable in Perfetto / chrome://tracing:
/// each RunBeginEvent opens a new process; engine ticks are rendered as
/// 1 ms spans at ts = sim_time * 1000 µs with walk/fault events nested
/// under the tick they occurred in.
std::string RenderChromeTrace(const std::vector<TraceEvent>& events);

/// Writes `content` to `path` (the render helpers above produce it).
Status WriteFile(const std::string& path, const std::string& content);

Status WriteJsonLines(const std::vector<TraceEvent>& events,
                      const std::string& path);
Status WriteChromeTrace(const std::vector<TraceEvent>& events,
                        const std::string& path);

/// Human-readable end-of-run summary of a registry: aligned tables of
/// counters, gauges, and histogram digests.
std::string RenderSummary(const Registry& registry);

}  // namespace obs
}  // namespace digest

#endif  // DIGEST_OBS_EXPORTERS_H_
