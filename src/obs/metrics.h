#ifndef DIGEST_OBS_METRICS_H_
#define DIGEST_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"

namespace digest {
namespace obs {

/// Label set of a metric instance, e.g. {{"category", "walk_hop"}}.
/// Labels are sorted by key at registration so two call sites naming the
/// same labels in a different order address the same instrument.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

/// Monotone counter (saturating at UINT64_MAX, matching MessageMeter's
/// overflow discipline).
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    uint64_t sum = 0;
    value_ = __builtin_add_overflow(value_, n, &sum)
                 ? ~static_cast<uint64_t>(0)
                 : sum;
  }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

/// Last-written numeric value (e.g. the running correlation estimate ρ̂).
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram: `upper_bounds` are the inclusive upper edges
/// of the finite buckets (must be strictly increasing); one implicit
/// overflow bucket catches everything above the last edge. Buckets are
/// fixed at registration so aggregation across runs is well-defined and
/// the exported form is byte-stable.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void Observe(double v);

  const std::vector<double>& upper_bounds() const { return upper_bounds_; }
  /// Per-bucket counts; size = upper_bounds().size() + 1 (last =
  /// overflow).
  const std::vector<uint64_t>& bucket_counts() const { return counts_; }
  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double Mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  /// Bucket-interpolated estimate of the q-quantile (q clamped to
  /// [0, 1]). Deterministic pure function of the counts, so quantile
  /// readouts are byte-stable across runs. Edge semantics:
  ///   - empty histogram: 0.0;
  ///   - q = 0: the lower edge of the first non-empty bucket (0.0 for
  ///     bucket 0 when its upper edge is positive);
  ///   - q = 1: the upper edge of the last non-empty finite bucket;
  ///   - mass in the overflow bucket has no finite upper edge, so any
  ///     quantile landing there reports the last finite edge (a
  ///     conservative lower bound — choose bounds that cover the data).
  /// Within a bucket the estimate interpolates linearly, the usual
  /// fixed-bucket approximation.
  double Quantile(double q) const;

 private:
  std::vector<double> upper_bounds_;
  std::vector<uint64_t> counts_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// `count` bucket edges growing geometrically from `start` by `factor`
/// (RocksDB-statistics-style coverage of long-tailed distributions like
/// walk hop counts).
std::vector<double> ExponentialBuckets(double start, double factor,
                                       size_t count);

/// `count` evenly spaced edges over [lo, hi] (e.g. acceptance rates).
std::vector<double> LinearBuckets(double lo, double hi, size_t count);

/// Named-metric registry: the process-wide (per experiment, in practice)
/// home of counters, gauges, and histograms. Instruments are created on
/// first Get* and live as long as the registry; returned pointers are
/// stable. Iteration and export order is deterministic (lexicographic in
/// the rendered key), so registry dumps are byte-reproducible.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter* GetCounter(const std::string& name, const LabelSet& labels = {});
  Gauge* GetGauge(const std::string& name, const LabelSet& labels = {});
  /// `upper_bounds` applies on first registration only; later callers
  /// get the existing instrument regardless of the bounds they pass.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> upper_bounds,
                          const LabelSet& labels = {});

  /// Canonical key of a (name, labels) pair: `name{k1=v1,k2=v2}` with
  /// keys sorted, or just `name` without labels.
  static std::string RenderKey(const std::string& name,
                               const LabelSet& labels);

  /// Deterministic (key-ordered) views, for exporters and tests.
  const std::map<std::string, std::unique_ptr<Counter>>& counters() const {
    return counters_;
  }
  const std::map<std::string, std::unique_ptr<Gauge>>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, std::unique_ptr<Histogram>>& histograms()
      const {
    return histograms_;
  }

  /// Sum convenience for tests: value of the counter registered under
  /// `key` (a RenderKey result), or 0 when absent.
  uint64_t CounterValue(const std::string& key) const;

  /// One JSON object covering every instrument, keys sorted. Stable
  /// formatting (%.17g doubles) so equal registries serialize equally.
  std::string ToJson() const;

  /// Writes ToJson() (plus trailing newline) to `path`.
  Status WriteJson(const std::string& path) const;

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace digest

#endif  // DIGEST_OBS_METRICS_H_
