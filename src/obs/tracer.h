#ifndef DIGEST_OBS_TRACER_H_
#define DIGEST_OBS_TRACER_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace digest {
namespace obs {

// Typed trace records for the engine's and sampler's load-bearing
// decisions (the span-style tracing approximate engines use to attribute
// error and cost to pipeline stages). Every record is stamped with the
// *simulated* time and a monotone sequence number — never wall clock —
// so traces are bit-reproducible across runs with the same seed.

/// Start of a logical run (one engine/experiment). Exporters map each
/// run to its own process so several runs coexist in one trace file.
struct RunBeginEvent {
  std::string label;
};

/// One engine tick (emitted once per Tick, after the tick's work). The
/// Chrome exporter renders these as the engine-tick spans under which
/// same-tick walk events nest.
struct TickEvent {
  bool snapshot_executed = false;
  bool degraded = false;
  bool result_updated = false;
  double reported = 0.0;
  double ci_halfwidth = 0.0;
};

/// PRED's gap choice: the fitted polynomial order, the chosen gap, and
/// the drift the fit predicts at the scheduled tick (§IV-A, Eq. 4).
struct GapPredictedEvent {
  int64_t gap = 0;
  int64_t next_tick = 0;
  int64_t poly_order = 0;
  double predicted_drift = 0.0;
  bool strict = false;
};

/// A sampling occasion ran (fresh or degraded-fallback).
struct SnapshotEvent {
  double value = 0.0;
  double ci_halfwidth = 0.0;
  uint64_t total_samples = 0;
  uint64_t fresh_samples = 0;
  uint64_t retained_samples = 0;
  bool degraded = false;
};

/// A tick the scheduler skipped (held/extrapolated result).
struct SnapshotSkippedEvent {
  int64_t next_snapshot_tick = 0;
};

/// The estimator's sample-budget plan for one occasion: RPT (repeated)
/// vs INDEP, with the running correlation ρ̂ driving the RPT split.
struct SampleBudgetEvent {
  bool repeated = false;
  double rho_hat = 0.0;
  double sigma_hat = 0.0;
  uint64_t planned_total = 0;
  uint64_t planned_retained = 0;
};

/// The engine widened the reported confidence interval (consecutive
/// failed snapshots under faults).
struct CiWidenedEvent {
  double from = 0.0;
  double to = 0.0;
};

/// Transition into a degraded answer: retained-pool fallback
/// (retained_pool = true) or holding the previous result (false).
struct DegradedFallbackEvent {
  bool retained_pool = false;
};

/// A batch of walk agents launched by the sampling operator.
struct WalkBatchEvent {
  uint64_t agents = 0;
  uint64_t warm = 0;
  uint64_t cold_steps = 0;
  uint64_t warm_steps = 0;
  uint64_t budget = 0;  ///< Attempt budget (0 = no fault plan).
};

/// Batch completion summary (telemetry totals for the batch).
struct WalkBatchDoneEvent {
  uint64_t samples = 0;
  uint64_t attempts = 0;
  uint64_t retries = 0;
  uint64_t losses = 0;
  uint64_t drops = 0;
  uint64_t stalled_steps = 0;
  uint64_t hedges = 0;      ///< Redundant walks launched this batch.
  uint64_t hedge_wins = 0;  ///< Hedges that delivered before the primary.
};

/// The batch's pooled hop budget ran out: the sampling call times out
/// and the engine degrades.
struct HopBudgetExhaustedEvent {
  uint64_t attempts = 0;
  uint64_t budget = 0;
};

/// A walk agent was lost in transit and re-injected at the origin.
struct AgentRestartEvent {
  uint64_t agent_index = 0;
};

/// The fault plan lost one message transmission on edge (from, to).
struct FaultLossEvent {
  uint64_t from = 0;
  uint64_t to = 0;
};

/// Walk steps frozen on blackholed (stalled) hosts during one batch.
struct FaultStallEvent {
  uint64_t stalled_steps = 0;
};

/// Session-supervisor health transition (core/supervisor.h): the state
/// machine moved from `from` to `to` because snapshot outcome `outcome`
/// was recorded. States and outcomes are stable lower-snake strings
/// (healthy/degraded/stale/recovering; met_contract/widened_ci/partial/
/// timeout).
struct SupervisorStateEvent {
  std::string from;
  std::string to;
  std::string outcome;
  uint64_t consecutive = 0;  ///< Streak length that drove the transition.
};

/// A snapshot finalized early: its message/step budget ran out, so the
/// estimator answered from the samples it had (honestly widened CI)
/// instead of stalling the PRED timeline.
struct PartialSnapshotEvent {
  uint64_t collected = 0;  ///< Fresh samples actually obtained.
  uint64_t planned = 0;    ///< Fresh samples the plan called for.
  double ci_halfwidth = 0.0;
};

/// A redundant (hedged) walk launched against a straggling agent: the
/// agent had spent `attempts` budget units, past the deterministic
/// straggler threshold derived from completed-walk statistics.
struct WalkHedgedEvent {
  uint64_t agent_index = 0;
  uint64_t attempts = 0;
  uint64_t threshold = 0;
};

/// Engine session state serialized to a versioned checkpoint blob.
struct CheckpointEvent {
  uint64_t bytes = 0;
  int64_t last_tick = 0;
};

/// Engine session state restored from a checkpoint blob.
struct RestoreEvent {
  uint64_t bytes = 0;
  int64_t last_tick = 0;
};

/// The precision auditor resolved one snapshot occasion against the
/// workload oracle: did the reported interval cover the truth, and if
/// not, which structural cause dominated (audit taxonomy; see
/// src/audit/audit.h). `occasions`/`misses` are the rolling per-run
/// counts after this resolution.
struct AuditCoverageEvent {
  double estimate = 0.0;
  double truth = 0.0;
  double ci_halfwidth = 0.0;
  bool hit = false;
  std::string cause;  ///< "none" on hits; a MissCauseName otherwise.
  uint64_t occasions = 0;
  uint64_t misses = 0;
};

/// The (1 − p) miss budget burned some more: emitted when a resolved
/// occasion missed, carrying the burn fraction and remaining headroom.
struct AuditBudgetEvent {
  double burn = 0.0;       ///< miss_rate / (1 − p); > 1 = SLO blown.
  double remaining = 0.0;  ///< max(0, 1 − burn).
  uint64_t occasions = 0;
  uint64_t misses = 0;
};

/// An audit drift detector (EWMA + two-sided CUSUM) is in breach after
/// this update. `flip` marks the update whose sustained-breach streak
/// reached patience and requested the supervisor degradation.
struct AuditDriftEvent {
  std::string detector;  ///< "signed_error" or "message_cost".
  double ewma = 0.0;
  double cusum_pos = 0.0;
  double cusum_neg = 0.0;
  double threshold = 0.0;
  uint64_t streak = 0;
  bool flip = false;
};

/// End-of-run SLO verdict for one continuous query: empirical (ε, p)
/// coverage vs the binomial-stderr floor, δ-compliance of extrapolated
/// (skipped-tick) answers, and the error-budget burn.
struct AuditSloEvent {
  std::string label;  ///< Run label (matches the run_begin label).
  double p = 0.0;
  double epsilon = 0.0;
  double delta = 0.0;
  uint64_t occasions = 0;  ///< Occasions resolved against the oracle.
  uint64_t hits = 0;
  uint64_t misses = 0;
  double coverage = 0.0;
  double coverage_floor = 0.0;  ///< p − 2·sqrt(p(1−p)/occasions).
  bool coverage_ok = false;
  uint64_t delta_ticks = 0;  ///< Skipped ticks resolved vs the oracle.
  uint64_t delta_misses = 0;
  double delta_compliance = 0.0;
  double budget_burn = 0.0;
  double budget_remaining = 0.0;
};

/// Per-batch walk-mixing verdict from the sampler diagnostics
/// (src/diag): pooled lag-1 autocorrelation of the weight series
/// w(visited node), total effective sample size across the batch's
/// walks, and the cross-walk Gelman–Rubin R̂ scoring burn-in adequacy.
struct WalkMixingEvent {
  uint64_t walks = 0;  ///< Delivered walks folded into the batch.
  uint64_t steps = 0;  ///< Walk steps recorded (live + dead visits).
  double lag1_autocorr = 0.0;
  double ess = 0.0;
  double rhat = 0.0;
};

/// Gap between the batch's empirical visit histogram and the
/// degree-corrected stationary target π(v) = w(v)/Σw over the *current*
/// live membership — joins/leaves rebase the target, and visits to
/// departed peers are pruned (`dropped_dead_visits`). `breach` marks a
/// total-variation distance past the configured tolerance; the auditor
/// re-attributes coinciding variance_undershoot misses to poor_mixing.
struct StationaryGapEvent {
  double tv_distance = 0.0;
  double chi_square = 0.0;
  uint64_t live_peers = 0;
  uint64_t visits = 0;  ///< Visits to still-live peers.
  uint64_t dropped_dead_visits = 0;
  bool breach = false;
};

/// Per-peer/per-link message-load accounting for one batch (weight
/// probes + accepted hops). `hot` flags the max-load peer when it
/// carries more than hot_peer_factor × the mean per-peer load.
struct PeerLoadEvent {
  uint64_t peers = 0;  ///< Peers that carried at least one message.
  uint64_t links = 0;  ///< Distinct links that carried messages.
  uint64_t hot_peer = 0;  ///< Max-load peer id (smallest id on ties).
  uint64_t max_load = 0;
  double mean_load = 0.0;
  bool hot = false;
};

/// Metropolis acceptance rate over one batch's proposals.
struct AcceptanceRateEvent {
  uint64_t proposals = 0;
  uint64_t accepted = 0;
  double rate = 0.0;
};

/// A peer's phi-accrual suspicion level crossed the suspect threshold
/// (src/net/peer_health.h). Emitted once per suspicion excursion — the
/// latch re-arms when the peer next delivers — so flapping peers are
/// visible without flooding the trace.
struct PeerSuspectEvent {
  uint64_t peer = 0;
  double phi = 0.0;          ///< Suspicion level at the crossing.
  uint64_t failures = 0;     ///< Consecutive failures at the crossing.
};

/// A per-peer circuit breaker changed state. States are stable
/// lower-snake strings: closed / open / half_open.
struct BreakerTransitionEvent {
  uint64_t peer = 0;
  std::string from;
  std::string to;
  double phi = 0.0;  ///< Suspicion level that drove the transition.
};

/// A correlated partition episode began: the fault plan splits the
/// overlay into `components` components for `length` ticks (membership
/// is a pure hash of (seed, episode, node); cross-component messages
/// are lost deterministically).
struct PartitionBeginEvent {
  uint64_t episode = 0;
  uint64_t components = 0;
  int64_t length = 0;
};

/// The partition episode healed: cross-component edges carry again.
struct PartitionEndEvent {
  uint64_t episode = 0;
};

/// The node-level scheduler coalesced a tick's snapshot demands: `queries`
/// continuous queries were due on the same tick and consumed one shared
/// walk batch instead of each paying for its own. `shared_samples` is the
/// size of the tick-scoped shared pool after all consumers ran;
/// `consumed_samples` sums every query's draws from it (>= shared_samples
/// whenever prefixes overlap across queries).
struct SnapshotCoalescedEvent {
  uint64_t queries = 0;
  uint64_t shared_samples = 0;
  uint64_t consumed_samples = 0;
};

using EventPayload =
    std::variant<RunBeginEvent, TickEvent, GapPredictedEvent, SnapshotEvent,
                 SnapshotSkippedEvent, SampleBudgetEvent, CiWidenedEvent,
                 DegradedFallbackEvent, WalkBatchEvent, WalkBatchDoneEvent,
                 HopBudgetExhaustedEvent, AgentRestartEvent, FaultLossEvent,
                 FaultStallEvent, SupervisorStateEvent, PartialSnapshotEvent,
                 WalkHedgedEvent, CheckpointEvent, RestoreEvent,
                 AuditCoverageEvent, AuditBudgetEvent, AuditDriftEvent,
                 AuditSloEvent, WalkMixingEvent, StationaryGapEvent,
                 PeerLoadEvent, AcceptanceRateEvent, PeerSuspectEvent,
                 BreakerTransitionEvent, PartitionBeginEvent,
                 PartitionEndEvent, SnapshotCoalescedEvent>;

/// Stable lower-snake-case name of a payload's event type (the `event`
/// field of the JSONL schema; see docs/OBSERVABILITY.md).
const char* EventName(const EventPayload& payload);

/// One emitted record: payload plus the deterministic stamps.
struct TraceEvent {
  uint64_t seq = 0;       ///< Monotone per tracer, from 0.
  int64_t sim_time = 0;   ///< Simulated tick at emission (tracer clock).
  /// Deterministic execution lane of the event, or -1 for none. The
  /// parallel sampling executor stamps each walk-scoped event with its
  /// WALK index — never an OS thread id, which would vary run-to-run
  /// and with the thread count. Lanes are therefore part of the
  /// bit-reproducible trace: the same trace is produced at any
  /// num_threads (test-enforced by parallel_determinism_test). Real
  /// thread attribution lives only on the wall-clock prof layer.
  int64_t lane = -1;
  EventPayload payload;
};

/// Structured event sink. Components hold a `Tracer*` that may be null
/// (the fast path: no tracing code runs at all); a non-null tracer whose
/// enabled() is false drops events before payload recording (NullTracer).
///
/// The tracer carries the simulated clock: the engine (or experiment
/// driver) calls set_now(t) once per tick and every component's Emit is
/// stamped with that time, so lower layers need no clock plumbing.
class Tracer {
 public:
  virtual ~Tracer() = default;

  /// False selects the null fast path: Emit drops the event unrecorded.
  virtual bool enabled() const = 0;

  /// Records `payload` stamped (seq, now). No-op when !enabled().
  void Emit(EventPayload payload) {
    if (!enabled()) return;
    Record(TraceEvent{seq_++, now_, /*lane=*/-1, std::move(payload)});
  }

  /// Records `payload` on a deterministic execution lane (>= 0): the
  /// walk index a buffered event belonged to. Same stamping as Emit.
  void EmitLane(EventPayload payload, int64_t lane) {
    if (!enabled()) return;
    Record(TraceEvent{seq_++, now_, lane, std::move(payload)});
  }

  /// Advances the simulated clock used to stamp events.
  void set_now(int64_t t) { now_ = t; }
  int64_t now() const { return now_; }

  /// Events recorded so far (the next seq to be assigned).
  uint64_t events_emitted() const { return seq_; }

 protected:
  virtual void Record(TraceEvent event) = 0;

 private:
  uint64_t seq_ = 0;
  int64_t now_ = 0;
};

/// Accepts and discards everything; attaching it is behaviorally
/// identical to passing a null tracer pointer.
class NullTracer : public Tracer {
 public:
  bool enabled() const override { return false; }

 protected:
  void Record(TraceEvent) override {}
};

/// Collects events in memory for the exporters and tests.
class MemoryTracer : public Tracer {
 public:
  bool enabled() const override { return true; }
  const std::vector<TraceEvent>& events() const { return events_; }
  void Clear() { events_.clear(); }

 protected:
  void Record(TraceEvent event) override {
    events_.push_back(std::move(event));
  }

 private:
  std::vector<TraceEvent> events_;
};

/// Collects bare payloads for deferred re-emission through another
/// tracer. The parallel walk executor hands each in-flight walk one of
/// these (events buffer thread-locally, unstamped), then re-emits the
/// payloads through the main tracer in walk-index order after the merge
/// barrier — so the final stamped stream is independent of scheduling.
class BufferTracer : public Tracer {
 public:
  bool enabled() const override { return true; }
  std::vector<EventPayload>& payloads() { return payloads_; }
  const std::vector<EventPayload>& payloads() const { return payloads_; }

 protected:
  void Record(TraceEvent event) override {
    payloads_.push_back(std::move(event.payload));
  }

 private:
  std::vector<EventPayload> payloads_;
};

/// Forwards every event to a parent tracer stamped with a fixed lane.
/// The multi-query node hands each engine one of these over the node's
/// real tracer, so per-query event streams interleave into one ordered
/// trace yet stay separable by lane (= QueryId). seq/sim_time come from
/// the parent — the engine's set_now on this wrapper moves only the
/// wrapper's own (unread) clock, while the node drives the parent clock
/// once per tick.
class LaneTracer : public Tracer {
 public:
  LaneTracer(Tracer* parent, int64_t lane) : parent_(parent), lane_(lane) {}

  bool enabled() const override {
    return parent_ != nullptr && parent_->enabled();
  }
  int64_t lane() const { return lane_; }

 protected:
  void Record(TraceEvent event) override {
    parent_->EmitLane(std::move(event.payload), lane_);
  }

 private:
  Tracer* parent_;
  int64_t lane_;
};

/// True when `tracer` is non-null and recording — guard for emission
/// sites whose payload is costly to assemble.
inline bool Tracing(const Tracer* tracer) {
  return tracer != nullptr && tracer->enabled();
}

}  // namespace obs
}  // namespace digest

#endif  // DIGEST_OBS_TRACER_H_
