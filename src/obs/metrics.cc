#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

#include "common/strings.h"

namespace digest {
namespace obs {
namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  AppendJsonEscaped(out, s);
  out->push_back('"');
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)),
      counts_(upper_bounds_.size() + 1, 0) {}

void Histogram::Observe(double v) {
  size_t bucket = upper_bounds_.size();  // Overflow bucket by default.
  for (size_t i = 0; i < upper_bounds_.size(); ++i) {
    if (v <= upper_bounds_[i]) {
      bucket = i;
      break;
    }
  }
  ++counts_[bucket];
  ++count_;
  sum_ += v;
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(count_);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += counts_[i];
    if (static_cast<double>(cumulative) < target) continue;
    if (i == upper_bounds_.size()) {
      // Overflow bucket: unbounded above, nothing to interpolate.
      return upper_bounds_.empty() ? 0.0 : upper_bounds_.back();
    }
    const double hi = upper_bounds_[i];
    const double lo = i == 0 ? std::min(0.0, hi) : upper_bounds_[i - 1];
    double frac = (target - before) / static_cast<double>(counts_[i]);
    frac = std::min(1.0, std::max(0.0, frac));
    return lo + (hi - lo) * frac;
  }
  return upper_bounds_.empty() ? 0.0 : upper_bounds_.back();
}

std::vector<double> ExponentialBuckets(double start, double factor,
                                       size_t count) {
  std::vector<double> out;
  out.reserve(count);
  double edge = start;
  for (size_t i = 0; i < count; ++i) {
    out.push_back(edge);
    edge *= factor;
  }
  return out;
}

std::vector<double> LinearBuckets(double lo, double hi, size_t count) {
  std::vector<double> out;
  out.reserve(count);
  if (count == 0) return out;
  const double step = count > 1 ? (hi - lo) / static_cast<double>(count - 1)
                                : 0.0;
  for (size_t i = 0; i < count; ++i) {
    out.push_back(lo + step * static_cast<double>(i));
  }
  return out;
}

std::string Registry::RenderKey(const std::string& name,
                                const LabelSet& labels) {
  if (labels.empty()) return name;
  LabelSet sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string key = name;
  key.push_back('{');
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) key.push_back(',');
    key += sorted[i].first;
    key.push_back('=');
    key += sorted[i].second;
  }
  key.push_back('}');
  return key;
}

Counter* Registry::GetCounter(const std::string& name,
                              const LabelSet& labels) {
  auto& slot = counters_[RenderKey(name, labels)];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::GetGauge(const std::string& name, const LabelSet& labels) {
  auto& slot = gauges_[RenderKey(name, labels)];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name,
                                  std::vector<double> upper_bounds,
                                  const LabelSet& labels) {
  auto& slot = histograms_[RenderKey(name, labels)];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(std::move(upper_bounds));
  }
  return slot.get();
}

uint64_t Registry::CounterValue(const std::string& key) const {
  auto it = counters_.find(key);
  return it == counters_.end() ? 0 : it->second->value();
}

std::string Registry::ToJson() const {
  std::string out = "{";
  out += "\"counters\":{";
  bool first = true;
  for (const auto& [key, counter] : counters_) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, key);
    out.push_back(':');
    out += std::to_string(counter->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [key, gauge] : gauges_) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, key);
    out.push_back(':');
    out += FormatDouble(gauge->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [key, hist] : histograms_) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, key);
    out += ":{\"bounds\":[";
    for (size_t i = 0; i < hist->upper_bounds().size(); ++i) {
      if (i > 0) out.push_back(',');
      out += FormatDouble(hist->upper_bounds()[i]);
    }
    out += "],\"counts\":[";
    for (size_t i = 0; i < hist->bucket_counts().size(); ++i) {
      if (i > 0) out.push_back(',');
      out += std::to_string(hist->bucket_counts()[i]);
    }
    out += "],\"count\":";
    out += std::to_string(hist->count());
    out += ",\"sum\":";
    out += FormatDouble(hist->sum());
    out.push_back('}');
  }
  out += "}}";
  return out;
}

Status Registry::WriteJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Unavailable("cannot open '" + path + "' for writing");
  }
  const std::string json = ToJson();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  if (std::fclose(f) != 0) {
    return Status::Unavailable("error closing '" + path + "'");
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace digest
