#include "obs/bridge.h"

namespace digest {
namespace obs {

void BridgeMessageMeter(const MessageMeter& meter, Registry* registry) {
  if (registry == nullptr) return;
  auto add = [&](const char* category, uint64_t value) {
    registry->GetCounter("net.messages", {{"category", category}})
        ->Increment(value);
  };
  add("walk_hop", meter.walk_hops());
  add("weight_probe", meter.weight_probes());
  add("sample_transfer", meter.sample_transfers());
  add("refresh", meter.refreshes());
  add("push", meter.pushes());
  add("retry", meter.retries());
  add("agent_restart", meter.agent_restarts());
  add("hedge_launch", meter.hedge_launches());
  add("hedged_duplicate", meter.hedged_duplicates());
  add("loss", meter.losses());
  registry->GetCounter("net.messages_total")->Increment(meter.Total());
  registry->GetCounter("net.fault_overhead")
      ->Increment(meter.FaultOverhead());
}

}  // namespace obs
}  // namespace digest
