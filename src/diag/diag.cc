#include "diag/diag.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

namespace digest {
namespace diag {
namespace {

std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void Field(std::string* out, const char* key, const std::string& value) {
  if (out->back() != '{') out->push_back(',');
  out->push_back('"');
  out->append(key);
  out->append("\":");
  out->append(value);
}

void Field(std::string* out, const char* key, uint64_t value) {
  Field(out, key, std::to_string(value));
}

}  // namespace

void SamplerDiag::FoldWalk(const WalkDiagBuffer& buffer) {
  batch_visit_series_.push_back(buffer.visits);
  batch_edges_.insert(batch_edges_.end(), buffer.probes.begin(),
                      buffer.probes.end());
  batch_edges_.insert(batch_edges_.end(), buffer.hops.begin(),
                      buffer.hops.end());
}

void SamplerDiag::FinishBatch(const Graph& graph,
                              const std::function<double(NodeId)>& weight,
                              uint64_t proposals, uint64_t accepted,
                              obs::Tracer* tracer, obs::Registry* registry) {
  BatchDiagnostics d;
  d.walks = batch_visit_series_.size();
  d.proposals = proposals;
  d.accepted = accepted;
  d.acceptance_rate =
      proposals > 0
          ? static_cast<double>(accepted) / static_cast<double>(proposals)
          : 0.0;

  // --- Stationary target, rebased on the current live membership. ---
  // π(v) = w(v)/Σw over graph.LiveNodes(): a peer that left the overlay
  // since the visits were recorded contributes no target mass, and its
  // visits are pruned from the empirical histogram (but counted, so a
  // churn-heavy run shows how much walk effort landed on dead peers).
  const std::vector<NodeId> live = graph.LiveNodes();
  d.live_peers = live.size();
  std::map<NodeId, uint64_t> visit_counts;
  for (const std::vector<NodeId>& series : batch_visit_series_) {
    d.steps += series.size();
    for (const NodeId v : series) {
      if (graph.HasNode(v)) {
        ++visit_counts[v];
        ++d.live_visits;
      } else {
        ++d.dropped_dead_visits;
      }
    }
  }
  double total_weight = 0.0;
  for (const NodeId v : live) total_weight += weight(v);
  if (total_weight > 0.0 && d.live_visits > 0) {
    const double n = static_cast<double>(d.live_visits);
    for (const NodeId v : live) {
      const double target = weight(v) / total_weight;
      const auto it = visit_counts.find(v);
      const double empirical =
          it == visit_counts.end() ? 0.0 : static_cast<double>(it->second) / n;
      d.tv_distance += 0.5 * std::fabs(empirical - target);
      if (target > 0.0) {
        const double gap = empirical - target;
        d.chi_square += gap * gap / target;
      }
    }
  }
  d.breach = d.live_visits >= options_.min_visits &&
             d.tv_distance > options_.tv_breach_threshold;

  // --- Burn-in adequacy from the per-walk scalar series xₜ = w(vₜ). ---
  // Pooled lag-1 autocorrelation (walk-mean-centered, weighted by lag
  // pairs), per-walk ESS = n(1−ρ)/(1+ρ) clamped to [1, n], and the
  // cross-walk Gelman–Rubin R̂ from between/within-walk variance. Dead
  // visits are excluded: the weight of a departed peer is undefined.
  double autocov_sum = 0.0;
  double var_sum = 0.0;
  std::vector<double> walk_means;
  std::vector<double> walk_vars;  // Sample variance, denominator n−1.
  double length_sum = 0.0;
  for (const std::vector<NodeId>& series : batch_visit_series_) {
    std::vector<double> x;
    x.reserve(series.size());
    for (const NodeId v : series) {
      if (graph.HasNode(v)) x.push_back(weight(v));
    }
    const size_t n = x.size();
    if (n == 0) continue;
    double mean = 0.0;
    for (const double v : x) mean += v;
    mean /= static_cast<double>(n);
    if (n < 2) {
      d.ess += 1.0;
      continue;
    }
    double var0 = 0.0;   // Σ(xₜ−μ)², denominator-free.
    double cov1 = 0.0;   // Σ(xₜ−μ)(xₜ₊₁−μ).
    for (size_t t = 0; t < n; ++t) {
      const double c = x[t] - mean;
      var0 += c * c;
      if (t + 1 < n) cov1 += c * (x[t + 1] - mean);
    }
    autocov_sum += cov1;
    var_sum += var0;
    const double rho = var0 > 0.0 ? cov1 / var0 : 0.0;
    const double nd = static_cast<double>(n);
    double ess = var0 > 0.0 ? nd * (1.0 - rho) / (1.0 + rho) : nd;
    d.ess += std::min(nd, std::max(1.0, ess));
    walk_means.push_back(mean);
    walk_vars.push_back(var0 / (nd - 1.0));
    length_sum += nd;
  }
  d.lag1_autocorr = var_sum > 0.0 ? autocov_sum / var_sum : 0.0;
  if (walk_means.size() >= 2) {
    const double m = static_cast<double>(walk_means.size());
    const double nbar = length_sum / m;
    double grand = 0.0;
    for (const double mu : walk_means) grand += mu;
    grand /= m;
    double between = 0.0;  // B = n̄/(m−1)·Σ(μ_w−μ)².
    for (const double mu : walk_means) {
      between += (mu - grand) * (mu - grand);
    }
    between *= nbar / (m - 1.0);
    double within = 0.0;  // W = mean per-walk sample variance.
    for (const double v : walk_vars) within += v;
    within /= m;
    if (within > 0.0 && nbar > 0.0) {
      const double var_plus =
          (nbar - 1.0) / nbar * within + between / nbar;
      d.rhat = std::sqrt(var_plus / within);
    }
  }

  // --- Per-peer / per-link message load and hot-peer detection. ---
  // Every probe and every accepted hop is one message over a concrete
  // link; both endpoints carry it. Maps are ordered, so ties resolve to
  // the smallest peer id deterministically.
  std::map<NodeId, uint64_t> peer_load;
  std::map<std::pair<NodeId, NodeId>, uint64_t> link_load;
  for (const auto& [from, to] : batch_edges_) {
    ++peer_load[from];
    ++peer_load[to];
    ++link_load[{std::min(from, to), std::max(from, to)}];
  }
  d.loaded_peers = peer_load.size();
  d.loaded_links = link_load.size();
  uint64_t total_touches = 0;
  for (const auto& [peer, load] : peer_load) {
    total_touches += load;
    if (load > d.max_load) {
      d.max_load = load;
      d.hot_peer = peer;
    }
  }
  d.mean_load = d.loaded_peers > 0 ? static_cast<double>(total_touches) /
                                         static_cast<double>(d.loaded_peers)
                                   : 0.0;
  d.hot = d.loaded_peers >= 2 &&
          static_cast<double>(d.max_load) >
              options_.hot_peer_factor * d.mean_load;

  // --- Export: trace events and registry keys. ---
  if (obs::Tracing(tracer)) {
    obs::WalkMixingEvent mixing;
    mixing.walks = d.walks;
    mixing.steps = d.steps;
    mixing.lag1_autocorr = d.lag1_autocorr;
    mixing.ess = d.ess;
    mixing.rhat = d.rhat;
    tracer->Emit(mixing);
    obs::StationaryGapEvent gap;
    gap.tv_distance = d.tv_distance;
    gap.chi_square = d.chi_square;
    gap.live_peers = d.live_peers;
    gap.visits = d.live_visits;
    gap.dropped_dead_visits = d.dropped_dead_visits;
    gap.breach = d.breach;
    tracer->Emit(gap);
    obs::PeerLoadEvent load;
    load.peers = d.loaded_peers;
    load.links = d.loaded_links;
    load.hot_peer = d.hot_peer;
    load.max_load = d.max_load;
    load.mean_load = d.mean_load;
    load.hot = d.hot;
    tracer->Emit(load);
    obs::AcceptanceRateEvent acc;
    acc.proposals = d.proposals;
    acc.accepted = d.accepted;
    acc.rate = d.acceptance_rate;
    tracer->Emit(acc);
  }
  if (registry != nullptr) {
    registry->GetCounter("diag.batches")->Increment();
    registry->GetCounter("diag.visits")->Increment(d.live_visits);
    registry->GetCounter("diag.dropped_dead_visits")
        ->Increment(d.dropped_dead_visits);
    if (d.breach) {
      registry->GetCounter("diag.stationary_breaches")->Increment();
    }
    if (d.hot) registry->GetCounter("diag.hot_batches")->Increment();
    registry->GetGauge("diag.tv_distance")->Set(d.tv_distance);
    registry->GetGauge("diag.chi_square")->Set(d.chi_square);
    registry->GetGauge("diag.lag1_autocorr")->Set(d.lag1_autocorr);
    registry->GetGauge("diag.ess")->Set(d.ess);
    registry->GetGauge("diag.rhat")->Set(d.rhat);
    registry->GetGauge("diag.acceptance_rate")->Set(d.acceptance_rate);
    registry->GetGauge("diag.hot_peer")
        ->Set(static_cast<double>(d.hot_peer));
    registry->GetGauge("diag.max_load")
        ->Set(static_cast<double>(d.max_load));
    registry->GetGauge("diag.mean_load")->Set(d.mean_load);
    registry
        ->GetHistogram("diag.tv_per_batch", obs::LinearBuckets(0.1, 1.0, 10))
        ->Observe(d.tv_distance);
  }

  // --- Run summary. ---
  ++batches_;
  walks_ += d.walks;
  steps_ += d.steps;
  live_visits_ += d.live_visits;
  dropped_dead_visits_ += d.dropped_dead_visits;
  proposals_ += d.proposals;
  accepted_ += d.accepted;
  if (d.breach) {
    ++breaches_;
    breach_since_read_ = true;
  }
  if (d.hot) ++hot_batches_;
  tv_sum_ += d.tv_distance;
  tv_max_ = std::max(tv_max_, d.tv_distance);

  last_batch_ = d;
  batch_visit_series_.clear();
  batch_edges_.clear();
}

void SamplerDiag::Reset() {
  batch_visit_series_.clear();
  batch_edges_.clear();
  last_batch_ = BatchDiagnostics{};
  breach_since_read_ = false;
  batches_ = 0;
  walks_ = 0;
  steps_ = 0;
  live_visits_ = 0;
  dropped_dead_visits_ = 0;
  proposals_ = 0;
  accepted_ = 0;
  breaches_ = 0;
  hot_batches_ = 0;
  tv_sum_ = 0.0;
  tv_max_ = 0.0;
}

std::string SamplerDiag::SummaryJson() const {
  std::string out = "{";
  Field(&out, "acceptance_rate",
        Num(proposals_ > 0 ? static_cast<double>(accepted_) /
                                 static_cast<double>(proposals_)
                           : 0.0));
  Field(&out, "accepted", accepted_);
  Field(&out, "batches", batches_);
  Field(&out, "breaches", breaches_);
  Field(&out, "dropped_dead_visits", dropped_dead_visits_);
  Field(&out, "ess_last", Num(last_batch_.ess));
  Field(&out, "hot_batches", hot_batches_);
  Field(&out, "hot_peer_last", static_cast<uint64_t>(last_batch_.hot_peer));
  Field(&out, "lag1_last", Num(last_batch_.lag1_autocorr));
  Field(&out, "live_visits", live_visits_);
  Field(&out, "max_load_last", last_batch_.max_load);
  Field(&out, "proposals", proposals_);
  Field(&out, "rhat_last", Num(last_batch_.rhat));
  Field(&out, "steps", steps_);
  Field(&out, "tv_last", Num(last_batch_.tv_distance));
  Field(&out, "tv_max", Num(tv_max_));
  Field(&out, "tv_mean",
        Num(batches_ > 0 ? tv_sum_ / static_cast<double>(batches_) : 0.0));
  Field(&out, "walks", walks_);
  out.push_back('}');
  return out;
}

std::string SamplerDiag::SummaryText() const {
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "  batches %llu  walks %llu  visits %llu (dead %llu)  tv last/mean/max "
      "%.3f/%.3f/%.3f  breaches %llu\n",
      static_cast<unsigned long long>(batches_),
      static_cast<unsigned long long>(walks_),
      static_cast<unsigned long long>(live_visits_),
      static_cast<unsigned long long>(dropped_dead_visits_),
      last_batch_.tv_distance,
      batches_ > 0 ? tv_sum_ / static_cast<double>(batches_) : 0.0, tv_max_,
      static_cast<unsigned long long>(breaches_));
  std::string out = buf;
  std::snprintf(
      buf, sizeof(buf),
      "  ess %.1f  lag1 %.3f  rhat %.3f  accept %.3f  hot batches %llu\n",
      last_batch_.ess, last_batch_.lag1_autocorr, last_batch_.rhat,
      proposals_ > 0
          ? static_cast<double>(accepted_) / static_cast<double>(proposals_)
          : 0.0,
      static_cast<unsigned long long>(hot_batches_));
  out += buf;
  return out;
}

}  // namespace diag
}  // namespace digest
