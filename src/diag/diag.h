#ifndef DIGEST_DIAG_DIAG_H_
#define DIGEST_DIAG_DIAG_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "net/graph.h"
#include "obs/metrics.h"
#include "obs/tracer.h"

namespace digest {
namespace diag {

/// Thresholds for the sampler-introspection verdicts. Defaults are
/// deliberately loose: the diagnostics are a debugging instrument, and a
/// breach only re-attributes an audit miss that already happened — it
/// never changes engine behavior.
struct DiagOptions {
  /// Total-variation distance above which a batch's empirical visit
  /// distribution is declared out of tolerance with the stationary
  /// target (a "stationary gap breach").
  double tv_breach_threshold = 0.25;
  /// Minimum live visits in a batch before a breach may be declared —
  /// a handful of warm-walk steps is not evidence of poor mixing.
  uint64_t min_visits = 32;
  /// A peer is "hot" when its message load exceeds this multiple of the
  /// mean per-peer load (and at least two peers carried load).
  double hot_peer_factor = 2.0;
};

/// Per-walk diagnostic scratchpad. One instance rides each walk agent
/// through a batch (thread-locally under the parallel executor) and
/// records raw facts only — no aggregation, no RNG, no clock — so the
/// fold into SamplerDiag can happen on the main thread in walk-index
/// order, keeping the diagnostics bit-identical for any thread count.
struct WalkDiagBuffer {
  /// Node occupied after each executed step, in step order.
  std::vector<NodeId> visits;
  /// Metropolis weight probes sent: (resident node, proposed neighbor).
  std::vector<std::pair<NodeId, NodeId>> probes;
  /// Accepted moves actually transmitted: (from, to).
  std::vector<std::pair<NodeId, NodeId>> hops;

  void RecordVisit(NodeId v) { visits.push_back(v); }
  void RecordProbe(NodeId from, NodeId to) { probes.emplace_back(from, to); }
  void RecordHop(NodeId from, NodeId to) { hops.emplace_back(from, to); }

  void Clear() {
    visits.clear();
    probes.clear();
    hops.clear();
  }
  bool Empty() const {
    return visits.empty() && probes.empty() && hops.empty();
  }
};

/// Snapshot of one finished batch's diagnostics (the payload of the four
/// trace events, kept for tests and the summary).
struct BatchDiagnostics {
  uint64_t walks = 0;          ///< Delivered walks folded into the batch.
  uint64_t steps = 0;          ///< Visits recorded (live + dead).
  uint64_t live_visits = 0;    ///< Visits to nodes still live at fold time.
  uint64_t dropped_dead_visits = 0;  ///< Visits pruned: the peer left.
  uint64_t live_peers = 0;     ///< Size of the rebased target support.
  double tv_distance = 0.0;    ///< ½·Σ|empirical − π| over live peers.
  double chi_square = 0.0;     ///< Σ(empirical − π)²/π over live peers.
  double lag1_autocorr = 0.0;  ///< Pooled lag-1 autocorrelation of w(vₜ).
  double ess = 0.0;            ///< Total effective sample size, Σ over walks.
  double rhat = 1.0;           ///< Cross-walk Gelman–Rubin statistic.
  uint64_t proposals = 0;      ///< Metropolis proposals this batch.
  uint64_t accepted = 0;       ///< Proposals accepted this batch.
  double acceptance_rate = 0.0;
  uint64_t loaded_peers = 0;   ///< Peers that carried ≥ 1 message.
  uint64_t loaded_links = 0;   ///< Distinct links that carried ≥ 1 message.
  NodeId hot_peer = 0;         ///< Max-load peer (smallest id on ties).
  uint64_t max_load = 0;       ///< Messages touching the hot peer.
  double mean_load = 0.0;      ///< Mean messages per loaded peer.
  bool hot = false;            ///< max_load > hot_peer_factor · mean_load.
  bool breach = false;         ///< Stationary gap out of tolerance.
};

/// Deterministic sampler-introspection aggregator (the `--diag` layer).
///
/// The sampling operator folds each delivered walk's WalkDiagBuffer into
/// the current batch (walk-index order) and closes the batch with
/// FinishBatch, which compares the empirical visit histogram against the
/// degree-corrected stationary target π(v) = w(v)/Σw — computed over the
/// graph's *current* live nodes, so joins and leaves rebase the target
/// and visits to departed peers are pruned (counted, not silently
/// dropped). Burn-in adequacy is scored from the per-walk scalar series
/// xₜ = w(vₜ): pooled lag-1 autocorrelation, per-walk ESS, and the
/// cross-walk Gelman–Rubin R̂. Message-load accounting (probes + hops)
/// yields per-peer/per-link load and hot-peer detection.
///
/// Determinism contract (test-enforced): the class consumes no RNG and
/// no wall clock; folding happens in walk-index order on one thread;
/// all aggregate state is identical for any worker-thread count, and a
/// null SamplerDiag* in the operator is the fast path — bit-identical
/// to an uninstrumented build.
class SamplerDiag {
 public:
  explicit SamplerDiag(DiagOptions options = {}) : options_(options) {}

  /// Folds one delivered walk's buffer into the open batch. Call in
  /// walk-index order; timed-out/cut walks are not folded (they
  /// delivered no sample, and folding them would make diagnostics
  /// depend on scheduling).
  void FoldWalk(const WalkDiagBuffer& buffer);

  /// Closes the open batch: rebases the target on `graph`'s live nodes,
  /// computes the mixing/load diagnostics, emits the four trace events
  /// through `tracer` and updates the `diag.*` registry keys (either may
  /// be null), and accumulates the run summary. `proposals`/`accepted`
  /// are the batch's Metropolis counters from the walk telemetry.
  void FinishBatch(const Graph& graph,
                   const std::function<double(NodeId)>& weight,
                   uint64_t proposals, uint64_t accepted, obs::Tracer* tracer,
                   obs::Registry* registry);

  /// Diagnostics of the most recently finished batch.
  const BatchDiagnostics& last_batch() const { return last_batch_; }

  /// True when the last finished batch breached the stationary-gap
  /// tolerance.
  bool LastBatchBreach() const { return last_batch_.breach; }

  /// Returns whether any batch since the previous call breached, and
  /// clears the flag — the engine reads this once per snapshot occasion
  /// to stamp SnapshotObservation::mixing_breach.
  bool TakeBreachSinceLastRead() {
    const bool b = breach_since_read_;
    breach_since_read_ = false;
    return b;
  }

  /// Batches finished since construction / the last Reset.
  uint64_t batches() const { return batches_; }

  /// Clears all state (open batch, last-batch snapshot, run summary).
  /// The experiment harness calls this at run start so a shared
  /// SamplerDiag (e.g. the bench suite's) summarizes one run at a time.
  void Reset();

  /// Deterministic one-line JSON summary of the run so far: cumulative
  /// counts plus the last batch's mixing verdicts. Keys sorted, %.17g
  /// doubles — byte-comparable across thread counts and repeats.
  std::string SummaryJson() const;

  /// Human-readable two-line digest of SummaryJson for bench output.
  std::string SummaryText() const;

 private:
  DiagOptions options_;

  // Open batch: raw per-walk records, in fold (walk-index) order.
  std::vector<std::vector<NodeId>> batch_visit_series_;
  std::vector<std::pair<NodeId, NodeId>> batch_edges_;

  BatchDiagnostics last_batch_;
  bool breach_since_read_ = false;

  // Run summary accumulators.
  uint64_t batches_ = 0;
  uint64_t walks_ = 0;
  uint64_t steps_ = 0;
  uint64_t live_visits_ = 0;
  uint64_t dropped_dead_visits_ = 0;
  uint64_t proposals_ = 0;
  uint64_t accepted_ = 0;
  uint64_t breaches_ = 0;
  uint64_t hot_batches_ = 0;
  double tv_sum_ = 0.0;
  double tv_max_ = 0.0;
};

}  // namespace diag
}  // namespace digest

#endif  // DIGEST_DIAG_DIAG_H_
