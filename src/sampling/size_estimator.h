#ifndef DIGEST_SAMPLING_SIZE_ESTIMATOR_H_
#define DIGEST_SAMPLING_SIZE_ESTIMATOR_H_

#include <cstddef>

#include "common/result.h"
#include "db/size_oracle.h"
#include "db/p2p_database.h"
#include "net/graph.h"
#include "sampling/sampling_operator.h"

namespace digest {

/// Tuning of the collision-based size estimator.
struct SizeEstimatorOptions {
  /// Initial number of uniform node samples per estimate.
  size_t initial_samples = 64;
  /// Keep doubling the sample count until at least this many sample
  /// collisions are observed; the estimator's relative error is roughly
  /// 1/√collision_target.
  size_t collision_target = 32;
  /// Hard cap on samples per estimate.
  size_t max_samples = 1 << 16;
  /// Estimates are cached and recomputed only every `refresh_period`
  /// queries (0 = recompute every time).
  size_t refresh_period = 16;
};

/// Fully distributed estimator of the network size |V| and relation
/// cardinality |R| = N, using only the sampling operator — no global
/// state (a deployment-grade replacement for ExactSizeOracle, which
/// DESIGN.md lists as a simulation substitution).
///
/// Method (birthday-paradox / collision counting): draw m uniform node
/// samples via a Metropolis walk with the uniform weight; if node v was
/// sampled k_v times, the number of sample collisions is
/// c = Σ_v C(k_v, 2), with E[c] = C(m, 2)/|V|; hence
///
///   |V|^ = m(m−1) / (2c).
///
/// The same samples provide the mean content size m̄ = avg m_v, giving
/// N^ = |V|^ · m̄. The sampler doubles m until enough collisions are
/// seen, so the relative error is roughly 1/√collision_target.
class CollisionSizeEstimator : public SizeOracle {
 public:
  /// `uniform_operator` must be configured with the *uniform* weight
  /// function; the estimator holds (not owns) it and the database.
  CollisionSizeEstimator(const P2PDatabase* db,
                         SamplingOperator* uniform_operator, NodeId origin,
                         SizeEstimatorOptions options = {})
      : db_(db),
        op_(uniform_operator),
        origin_(origin),
        options_(options) {}

  /// Estimates the number of live overlay nodes |V|.
  Result<double> EstimateNetworkSize();

  /// Estimates |R| (SizeOracle interface): |V|^ times the average
  /// content size of the sampled nodes. Cached per
  /// SizeEstimatorOptions::refresh_period.
  Result<double> EstimateRelationSize() override;

  /// Drops the cached estimate (e.g., after heavy churn).
  void Invalidate() { calls_since_estimate_ = 0; has_estimate_ = false; }

 private:
  struct Estimate {
    double nodes = 0.0;
    double tuples = 0.0;
    size_t samples_used = 0;
  };
  Result<Estimate> ComputeEstimate();

  const P2PDatabase* db_;
  SamplingOperator* op_;
  NodeId origin_;
  SizeEstimatorOptions options_;

  bool has_estimate_ = false;
  Estimate cached_;
  size_t calls_since_estimate_ = 0;
};

}  // namespace digest

#endif  // DIGEST_SAMPLING_SIZE_ESTIMATOR_H_
