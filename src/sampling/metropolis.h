#ifndef DIGEST_SAMPLING_METROPOLIS_H_
#define DIGEST_SAMPLING_METROPOLIS_H_

#include <vector>

#include "common/result.h"
#include "net/graph.h"
#include "numeric/matrix.h"
#include "sampling/weight.h"

namespace digest {

/// Metropolis acceptance probability for a proposed move i → j
/// (paper Eq. 12, with uniform neighbor proposal and laziness ½ applied
/// by the walker):
///
///   accept(i→j) = min(1, (w_j · d_i) / (w_i · d_j))
///
/// Only the weight *ratio* w_j/w_i and local degrees are needed — no
/// global normalization — which is what makes the operator fully
/// distributed (§V-A). Zero-weight targets are never accepted; a
/// zero-weight current node always accepts (escapes immediately).
double MetropolisAcceptance(double weight_i, size_t degree_i, double weight_j,
                            size_t degree_j);

/// Dense forwarding matrix of the lazy Metropolis walk over the live
/// nodes of `graph`, for spectral/convergence analysis (Theorems 1–3):
///
///   P(i,j) = ½ · (1/d_i) · accept(i→j)   for adjacent i, j
///   P(i,i) = 1 − Σ_{j≠i} P(i,j)
///
/// `nodes[r]` maps matrix row r back to the NodeId; `pi` is the
/// normalized target distribution w_v / Σ w_u over the same indexing.
/// Fails if the graph is empty, disconnected, or any live node has
/// non-positive weight (the analysis requires a strictly positive
/// target).
struct ForwardingMatrix {
  Matrix p;
  std::vector<NodeId> nodes;
  std::vector<double> pi;

  ForwardingMatrix() : p(0, 0) {}
};

Result<ForwardingMatrix> BuildForwardingMatrix(const Graph& graph,
                                               const WeightFn& weight,
                                               double laziness = 0.5);

/// Recommends a cold-walk length for sampling within total-variation γ
/// of the target: Theorem 3's eigengap bound
/// τ(γ) ≤ ln(1/(π_min·γ)) / (1 − |λ₂|), computed from the exact
/// forwarding matrix. Intended for calibration at up to a few thousand
/// nodes (O(N²) per power-iteration step); production deployments use
/// SamplingOperatorOptions' poly-log heuristic that this helper
/// validates. Fails on disconnected graphs or non-positive weights.
Result<size_t> RecommendWalkLength(const Graph& graph,
                                   const WeightFn& weight, double gamma,
                                   double laziness = 0.5);

/// Total-variation difference ‖a − b‖ = ½ Σ |a_i − b_i| between two
/// distributions over the same support (Definition 1). Fails on size
/// mismatch.
Result<double> TotalVariationDistance(const std::vector<double>& a,
                                      const std::vector<double>& b);

/// Distribution of the walk after `steps` transitions from the initial
/// distribution `pi0` (π_t = π₀ Pᵗ). Fails on shape mismatch.
Result<std::vector<double>> DistributionAfter(const ForwardingMatrix& fm,
                                              const std::vector<double>& pi0,
                                              size_t steps);

/// Mixing time τ(γ): the smallest t such that the walk started from the
/// worst-case deterministic start is within total variation γ of the
/// target (Definition 2). Computed exactly by iterating the forwarding
/// matrix; intended for test/bench-scale graphs. Fails if `max_steps`
/// transitions do not suffice.
Result<size_t> MixingTime(const ForwardingMatrix& fm, double gamma,
                          size_t max_steps = 1 << 20);

}  // namespace digest

#endif  // DIGEST_SAMPLING_METROPOLIS_H_
