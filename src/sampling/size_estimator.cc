#include "sampling/size_estimator.h"

#include <unordered_map>

namespace digest {

Result<CollisionSizeEstimator::Estimate>
CollisionSizeEstimator::ComputeEstimate() {
  std::unordered_map<NodeId, size_t> counts;
  size_t samples = 0;
  size_t collisions = 0;
  double content_sum = 0.0;
  size_t batch = options_.initial_samples;
  while (true) {
    // Collision counting requires (near-)independent samples: a warm
    // agent's successive positions are correlated across batches, which
    // inflates self-collisions and biases |V|^ low. Dropping the warm
    // pool makes every batch a set of fresh, fully mixed walkers
    // (collisions *within* a batch come from distinct agents).
    op_->ResetAgents();
    DIGEST_ASSIGN_OR_RETURN(std::vector<NodeId> nodes,
                            op_->SampleNodes(origin_, batch));
    for (NodeId v : nodes) {
      size_t& k = counts[v];
      collisions += k;  // C(k+1, 2) − C(k, 2) = k new colliding pairs.
      ++k;
      content_sum += static_cast<double>(db_->ContentSize(v));
    }
    samples += nodes.size();
    if (collisions >= options_.collision_target) break;
    if (samples >= options_.max_samples) {
      if (collisions == 0) {
        return Status::Unavailable(
            "no sample collisions observed: network too large for the "
            "configured sample budget");
      }
      break;  // Use what we have, at higher variance.
    }
    batch = samples;  // Double the sample count each round.
  }
  Estimate est;
  const double m = static_cast<double>(samples);
  est.nodes = m * (m - 1.0) / (2.0 * static_cast<double>(collisions));
  est.tuples = est.nodes * (content_sum / m);
  est.samples_used = samples;
  return est;
}

Result<double> CollisionSizeEstimator::EstimateNetworkSize() {
  DIGEST_ASSIGN_OR_RETURN(Estimate est, ComputeEstimate());
  return est.nodes;
}

Result<double> CollisionSizeEstimator::EstimateRelationSize() {
  if (has_estimate_ && options_.refresh_period > 0 &&
      calls_since_estimate_ < options_.refresh_period) {
    ++calls_since_estimate_;
    return cached_.tuples;
  }
  DIGEST_ASSIGN_OR_RETURN(cached_, ComputeEstimate());
  has_estimate_ = true;
  calls_since_estimate_ = 1;
  return cached_.tuples;
}

}  // namespace digest
