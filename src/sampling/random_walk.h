#ifndef DIGEST_SAMPLING_RANDOM_WALK_H_
#define DIGEST_SAMPLING_RANDOM_WALK_H_

#include <cstdint>

#include "common/result.h"
#include "net/fault_plan.h"
#include "net/graph.h"
#include "net/message_meter.h"
#include "numeric/rng.h"
#include "sampling/weight.h"

namespace digest {

namespace diag {
struct WalkDiagBuffer;
}  // namespace diag

class QuarantineView;
struct WalkHealthBuffer;

/// Per-call accounting of a walk, accumulated across Steps (fault-free
/// walks populate it too, for observability). `attempts` is the budget
/// currency: one unit per attempted transition plus the deterministic
/// backoff cost of every retransmission — the quantity a
/// SamplingOperator's hop budget bounds.
struct WalkTelemetry {
  uint64_t attempts = 0;       ///< Budget units consumed.
  uint64_t retries = 0;        ///< Retransmissions after a lost message.
  uint64_t losses = 0;         ///< Transmissions lost in transit.
  uint64_t drops = 0;          ///< Agents lost and re-injected at origin.
  uint64_t abandoned = 0;      ///< Transitions given up after retry budget.
  uint64_t stale_probes = 0;   ///< Probes answered with stale weights.
  uint64_t stalled_steps = 0;  ///< Steps frozen on a blackholed host.
  uint64_t proposals = 0;      ///< Metropolis moves proposed (probes sent).
  uint64_t accepted = 0;       ///< Proposals the acceptance test took.
  uint64_t backoff_units = 0;  ///< Retry latency paid, in budget ticks.
  uint64_t hedges = 0;         ///< Redundant walks launched vs stragglers.
  uint64_t hedge_wins = 0;     ///< Hedges that delivered before the primary.
};

/// A sampling agent: a lazy Metropolis random walk over the overlay
/// (paper §V). One Step is:
///
///   1. with probability ½ stay put (laziness, makes the chain
///      aperiodic);
///   2. otherwise propose a uniformly random neighbor j, probe its
///      weight (one message), and move there with probability
///      min(1, (w_j·d_i)/(w_i·d_j)) — one message per actual move.
///
/// The walk survives churn: if the current node disappears from the
/// graph, the next Step restarts from the given fallback node.
///
/// Under an attached FaultPlan the same transition is subject to message
/// loss (probes and hops are retransmitted with exponential backoff up
/// to RetryPolicy::max_attempts, then abandoned), stalled peers (a
/// blackholed host freezes the agent; a blackholed neighbor never
/// answers probes), stale weight probes (the acceptance test sees a
/// distorted weight), and agent drops (the agent is lost in transit and
/// restarts from the fallback node, like a churn-stranded agent). All
/// fault randomness comes from the plan's own stream, so a plan with all
/// rates zero leaves the walk bit-identical to the fault-free path.
class RandomWalk {
 public:
  /// Starts a walk at `origin`. `laziness` is the per-step self-loop
  /// probability: ½ is the paper's choice (guarantees aperiodicity on
  /// any graph); 0 gives the non-lazy chain, which fails to converge on
  /// bipartite graphs (e.g., even rings, meshes) — exposed for the
  /// ablation in bench_mixing.
  explicit RandomWalk(NodeId origin, double laziness = 0.5)
      : current_(origin), laziness_(laziness) {}

  /// Node the agent currently resides on.
  NodeId current() const { return current_; }

  /// Executes one (lazy) Metropolis transition. `meter` may be null (no
  /// accounting). Fails if both the current node and `fallback` are dead.
  /// `faults`, `retry`, and `telemetry` may be null for the clean path;
  /// with faults attached, `retry` governs retransmissions and
  /// `telemetry` (if given) accumulates the fault accounting. `diag`
  /// (normally null — the fast path) records the step's weight probe
  /// and accepted-hop edges for the sampler diagnostics; it consumes no
  /// randomness, so instrumented and uninstrumented runs are
  /// bit-identical.
  ///
  /// `quarantine` (may be null) is the frozen per-batch quarantine view
  /// from the peer-health monitor: proposals are drawn uniformly over
  /// the NON-quarantined neighbors, and both degree corrections in the
  /// acceptance test use live degrees — the walk is exactly the
  /// Metropolis chain on the subgraph induced by live nodes, so the
  /// stationary target over the live nodes is preserved (see the
  /// src/diag TV gate). An empty view takes the legacy draw path,
  /// bit-identical to an unmonitored run. `health` (may be null)
  /// records each transmission's (peer, delivered) outcome for the
  /// monitor to fold after the batch; it consumes no randomness.
  Status Step(const Graph& graph, const WeightFn& weight, Rng& rng,
              MessageMeter* meter, NodeId fallback,
              FaultPlan* faults = nullptr, const RetryPolicy* retry = nullptr,
              WalkTelemetry* telemetry = nullptr,
              diag::WalkDiagBuffer* diag = nullptr,
              const QuarantineView* quarantine = nullptr,
              WalkHealthBuffer* health = nullptr);

  /// Executes `steps` transitions (clean path only; fault-aware loops
  /// live in SamplingOperator, which owns the hop budget). `telemetry`
  /// may be null; when given it accumulates the observability counters
  /// (attempts, proposals, accepted). `diag` (may be null) additionally
  /// records the post-step position of every transition — the visit
  /// histogram the diagnostics compare against the stationary target.
  /// `quarantine`/`health` route and record exactly as in Step.
  Status Advance(const Graph& graph, const WeightFn& weight, Rng& rng,
                 MessageMeter* meter, NodeId fallback, size_t steps,
                 WalkTelemetry* telemetry = nullptr,
                 diag::WalkDiagBuffer* diag = nullptr,
                 const QuarantineView* quarantine = nullptr,
                 WalkHealthBuffer* health = nullptr);

 private:
  NodeId current_;
  double laziness_;
};

}  // namespace digest

#endif  // DIGEST_SAMPLING_RANDOM_WALK_H_
