#ifndef DIGEST_SAMPLING_RANDOM_WALK_H_
#define DIGEST_SAMPLING_RANDOM_WALK_H_

#include "common/result.h"
#include "net/graph.h"
#include "net/message_meter.h"
#include "numeric/rng.h"
#include "sampling/weight.h"

namespace digest {

/// A sampling agent: a lazy Metropolis random walk over the overlay
/// (paper §V). One Step is:
///
///   1. with probability ½ stay put (laziness, makes the chain
///      aperiodic);
///   2. otherwise propose a uniformly random neighbor j, probe its
///      weight (one message), and move there with probability
///      min(1, (w_j·d_i)/(w_i·d_j)) — one message per actual move.
///
/// The walk survives churn: if the current node disappears from the
/// graph, the next Step restarts from the given fallback node.
class RandomWalk {
 public:
  /// Starts a walk at `origin`. `laziness` is the per-step self-loop
  /// probability: ½ is the paper's choice (guarantees aperiodicity on
  /// any graph); 0 gives the non-lazy chain, which fails to converge on
  /// bipartite graphs (e.g., even rings, meshes) — exposed for the
  /// ablation in bench_mixing.
  explicit RandomWalk(NodeId origin, double laziness = 0.5)
      : current_(origin), laziness_(laziness) {}

  /// Node the agent currently resides on.
  NodeId current() const { return current_; }

  /// Executes one (lazy) Metropolis transition. `meter` may be null (no
  /// accounting). Fails if both the current node and `fallback` are dead.
  Status Step(const Graph& graph, const WeightFn& weight, Rng& rng,
              MessageMeter* meter, NodeId fallback);

  /// Executes `steps` transitions.
  Status Advance(const Graph& graph, const WeightFn& weight, Rng& rng,
                 MessageMeter* meter, NodeId fallback, size_t steps);

 private:
  NodeId current_;
  double laziness_;
};

}  // namespace digest

#endif  // DIGEST_SAMPLING_RANDOM_WALK_H_
