#ifndef DIGEST_SAMPLING_SAMPLING_OPERATOR_H_
#define DIGEST_SAMPLING_SAMPLING_OPERATOR_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "common/result.h"
#include "net/fault_plan.h"
#include "net/graph.h"
#include "net/message_meter.h"
#include "numeric/rng.h"
#include "sampling/random_walk.h"
#include "sampling/weight.h"

namespace digest {
namespace diag {
class SamplerDiag;
}  // namespace diag
namespace exec {
class WorkerPool;
}  // namespace exec
namespace obs {
class Registry;
class Tracer;
}  // namespace obs
namespace prof {
class Profiler;
}  // namespace prof

class PeerHealthMonitor;

/// Straggler mitigation for fault-injected walks: when one agent has
/// consumed far more budget than completed walks typically need, launch
/// a redundant (hedged) walk and let the two race; the first to finish
/// delivers the sample and the loser's eventual delivery is suppressed
/// as a duplicate. The duplicate is routed through a different replica
/// when possible — it forks from the most recently delivered agent's
/// already-mixed position, away from whatever lossy or stalled
/// neighborhood trapped the straggler — and the race resolves in
/// virtual time (consumed attempt units), with the cheaper walker
/// stepping next, the way two parallel walks would resolve in a real
/// overlay. The threshold is derived purely from the observed
/// attempts-per-step distribution of completed walks in this run — no
/// wall clock — so hedged runs stay bit-reproducible from the seed.
struct HedgePolicy {
  /// Off by default: disabled hedging is bit-identical to the pre-hedge
  /// sampler, faults or not.
  bool enabled = false;

  /// An agent is a straggler once its consumed attempts exceed
  /// straggler_factor × (its planned steps) × (observed mean attempts
  /// per step). Must be >= 1.
  double straggler_factor = 3.0;

  /// Completed walks to observe before hedging arms (below this the
  /// attempts-per-step estimate is noise). Must be >= 1.
  size_t min_observations = 4;

  Status Validate() const;
};

/// Tuning of the distributed sampling operator S.
struct SamplingOperatorOptions {
  /// Steps a cold agent walks before its position counts as a sample
  /// (the mixing time). 0 selects an automatic value of
  /// ceil(mixing_factor · ln²(N)), per Theorem 4's poly-log bound.
  size_t walk_length = 0;

  /// Steps a warm agent walks between successive samples (the reset
  /// time, §VI-A: much shorter than the mixing time). 0 selects
  /// ceil(reset_factor · ln(N)).
  size_t reset_length = 0;

  /// Multipliers for the automatic lengths above.
  double mixing_factor = 4.0;
  double reset_factor = 4.0;

  /// Keep agents warm across invocations (continue the converged walk
  /// instead of restarting), as in the paper's experimental setup. When
  /// false every sample pays the full walk_length.
  bool warm_walks = true;

  /// Per-step self-loop probability of the walk. ½ per the paper
  /// (aperiodicity on any graph); 0 is the non-lazy ablation, unsafe on
  /// bipartite overlays (even rings, meshes).
  double laziness = 0.5;

  /// Retransmission/backoff policy and hop-budget timeout applied when a
  /// FaultPlan is attached (ignored otherwise).
  RetryPolicy retry;

  /// Hedged-walk straggler mitigation (only active under a FaultPlan).
  HedgePolicy hedge;

  /// Walk-batch execution mode. 0 (default) is the legacy serial path:
  /// every draw comes from the operator's single shared RNG stream,
  /// bit-identical to all pre-parallel releases. Any value >= 1 selects
  /// the deterministic parallel mode: each batch derives one substream
  /// per WALK (keyed by walk index via Rng::Split, never by thread) and
  /// runs the walks on a worker pool of this many threads, merging
  /// results/meters/traces in walk-index order after the pool barrier —
  /// so every observable output is bit-identical for ANY num_threads
  /// >= 1 (num_threads == 1 runs the same algorithm inline and is the
  /// reference schedule the determinism tests compare against). See
  /// DESIGN.md "Parallel execution & determinism model" for the exact
  /// semantic deltas vs the serial path (per-walk hedge statistics
  /// freezing, walk-granular hop budget).
  size_t num_threads = 0;
};

/// A batch that may have been cut short by the hop budget: `nodes` holds
/// whatever samples completed before `timed_out` became true.
struct PartialBatch {
  std::vector<NodeId> nodes;
  bool timed_out = false;
};

/// The distributed sampling operator S (paper §III, §V).
///
/// Given a weight function w over nodes, each invocation returns a node
/// v drawn with probability w_v / Σ_u w_u, by running a lazy Metropolis
/// random walk from the originating node until (approximately) mixed.
/// Batch mode runs several agents in one call; warm agents are reused
/// across calls so successive samples only pay the reset time.
///
/// The operator holds references to the graph (and through the weight
/// function, usually the database); both must outlive it. Churn between
/// invocations is handled: agents stranded on departed nodes restart
/// from the origin.
///
/// With a FaultPlan attached (SetFaultPlan), walks run under injected
/// message loss, stalls, stale probes, and agent drops. Lost messages
/// are retransmitted per options.retry; an agent dropped in transit is
/// re-injected at the origin and walks a full cold mixing length again.
/// Each batch may spend at most retry.hop_budget_factor times its
/// planned hop count (retries and backoff delays included); when the
/// budget runs out mid-batch, SampleNodes fails with kUnavailable — the
/// caller (e.g. DigestEngine) degrades gracefully instead of blocking
/// forever on an unreachable overlay.
class SamplingOperator {
 public:
  /// `meter` may be null to skip accounting.
  SamplingOperator(const Graph* graph, WeightFn weight, Rng rng,
                   MessageMeter* meter,
                   SamplingOperatorOptions options = {});
  ~SamplingOperator();

  /// Attaches (or detaches, with nullptr) a fault-injection plan. The
  /// plan is not owned and must outlive the operator. A plan with all
  /// rates zero leaves every draw bit-identical to no plan.
  void SetFaultPlan(FaultPlan* faults) { faults_ = faults; }
  FaultPlan* fault_plan() const { return faults_; }

  /// Attaches structured observability (each may be null; none is
  /// owned). The tracer receives walk-batch lifecycle events (launch,
  /// agent restart, hop-budget exhaustion, completion); the registry
  /// receives hop-count/acceptance-rate/retry histograms and batch
  /// counters; the wall-clock profiler times whole batches
  /// (prof::Phase::kWalkBatch, items = samples drawn) and per-agent
  /// stepping (kWalkAdvance, items = hops). Pure observation: the
  /// sampled nodes, the RNG stream, and all MessageMeter accounting are
  /// bit-identical with or without.
  void SetObservability(obs::Tracer* tracer, obs::Registry* registry,
                        prof::Profiler* profiler = nullptr) {
    tracer_ = tracer;
    registry_ = registry;
    profiler_ = profiler;
  }
  obs::Tracer* tracer() const { return tracer_; }
  obs::Registry* registry() const { return registry_; }
  prof::Profiler* profiler() const { return profiler_; }

  /// Attaches (or detaches, with nullptr) the sampler-introspection
  /// aggregator. Not owned. Each delivered walk's visit/probe/hop record
  /// is folded in walk-index order and every batch is closed with
  /// SamplerDiag::FinishBatch against the current live membership. Pure
  /// observation with the same contract as SetObservability: a null
  /// diag is the fast path, bit-identical to an uninstrumented build,
  /// and the folded state is invariant across num_threads.
  void SetDiag(diag::SamplerDiag* diag) { diag_ = diag; }
  diag::SamplerDiag* diag() const { return diag_; }

  /// Attaches (or detaches, with nullptr) the adaptive peer-health
  /// monitor. Not owned. Unlike the pure observers above, the monitor
  /// STEERS: each batch routes against the quarantine view frozen at
  /// batch start (open breakers drop out of the proposal distribution,
  /// with degree corrections that preserve the stationary target over
  /// the live nodes), and each delivered walk's transmission outcomes
  /// are folded back in walk-index order, closing with
  /// FinishBatch(live population). A monitor whose quarantine set is
  /// empty leaves every draw bit-identical to no monitor, and the
  /// folded health state is invariant across num_threads
  /// (test-enforced).
  void SetHealth(PeerHealthMonitor* health) { health_ = health; }
  PeerHealthMonitor* health() const { return health_; }

  /// Draws one sample node, originating the walk at `origin`. Returning
  /// the sampled node id to the originator costs one transfer message.
  /// Fails if the graph is empty or the origin is dead with no live node
  /// remaining.
  Result<NodeId> SampleNode(NodeId origin);

  /// Draws `n` sample nodes in batch mode (§VI-A): n agents with
  /// overlapping convergence, each contributing one node. Under faults,
  /// fails with kUnavailable when the batch hop budget times out.
  Result<std::vector<NodeId>> SampleNodes(NodeId origin, size_t n);

  /// Deadline-budgeted variant: identical draws, meter accounting, and
  /// trace emission to SampleNodes, but when the batch hop budget runs
  /// out it returns the samples completed so far with timed_out = true
  /// instead of failing — the raw material for a partial snapshot.
  Result<PartialBatch> SampleNodesPartial(NodeId origin, size_t n);

  /// Drops all warm agents (e.g., after a topology change large enough
  /// that their positions should not be trusted).
  void ResetAgents() { agents_.clear(); }

  /// Effective cold-walk length for the current graph size.
  size_t EffectiveWalkLength() const;

  /// Effective warm-walk (reset) length for the current graph size.
  size_t EffectiveResetLength() const;

  /// Walk accounting of the most recent SampleNodes call. The
  /// observability counters (attempts, proposals, accepted) are
  /// populated on every call; the fault categories stay zero when no
  /// fault plan is attached.
  const WalkTelemetry& last_telemetry() const { return last_telemetry_; }

  const SamplingOperatorOptions& options() const { return options_; }

  /// Completed-walk statistics feeding the hedge straggler threshold
  /// (attempts and planned steps of every agent that delivered under
  /// faults this run).
  uint64_t hedge_done_walks() const { return done_walks_; }
  uint64_t hedge_done_attempts() const { return done_attempts_; }
  uint64_t hedge_done_steps() const { return done_steps_; }

  /// Serializable session state: warm-agent positions, the round-robin
  /// cursor, the RNG stream, and the hedge statistics. Everything a
  /// restored operator needs to replay the exact draw sequence an
  /// uninterrupted run would have made.
  struct State {
    std::vector<NodeId> agent_positions;
    uint64_t next_agent = 0;
    Rng::State rng;
    uint64_t done_walks = 0;
    uint64_t done_attempts = 0;
    uint64_t done_steps = 0;
  };
  State SaveState() const;
  void RestoreState(const State& state);

 private:
  /// Core batch loop shared by SampleNodes / SampleNodesPartial. The
  /// two wrappers differ only in how a hop-budget timeout is reported.
  /// Dispatches to SampleBatchParallel when options_.num_threads >= 1.
  Result<PartialBatch> SampleBatch(NodeId origin, size_t n);

  /// Deterministic multi-threaded batch: per-walk substreams, worker
  /// pool fan-out, ordered post-barrier merge. Bit-identical output for
  /// any num_threads >= 1.
  Result<PartialBatch> SampleBatchParallel(NodeId origin, size_t n);

  /// Hedge straggler threshold in attempt units for an agent planned to
  /// walk `steps` steps; 0 means hedging is disarmed (disabled, no fault
  /// plan, or not enough completed walks observed yet).
  uint64_t HedgeThreshold(size_t steps) const;

  const Graph* graph_;
  WeightFn weight_;
  Rng rng_;
  MessageMeter* meter_;
  SamplingOperatorOptions options_;
  FaultPlan* faults_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  obs::Registry* registry_ = nullptr;
  prof::Profiler* profiler_ = nullptr;
  diag::SamplerDiag* diag_ = nullptr;
  PeerHealthMonitor* health_ = nullptr;
  WalkTelemetry last_telemetry_;
  std::vector<RandomWalk> agents_;  // Warm agents, reused round-robin.
  size_t next_agent_ = 0;
  // Worker pool for the parallel mode; created lazily on the first
  // parallel batch (absent entirely at num_threads == 0).
  std::unique_ptr<exec::WorkerPool> pool_;
  // Completed-walk stats for the hedge threshold (faulted batches only).
  uint64_t done_walks_ = 0;
  uint64_t done_attempts_ = 0;
  uint64_t done_steps_ = 0;
};

}  // namespace digest

#endif  // DIGEST_SAMPLING_SAMPLING_OPERATOR_H_
