#include "sampling/tuple_sampler.h"

namespace digest {

Result<TupleSample> TwoStageTupleSampler::Sample(NodeId origin) {
  DIGEST_ASSIGN_OR_RETURN(std::vector<TupleSample> batch,
                          SampleBatch(origin, 1));
  return batch.front();
}

Result<std::vector<TupleSample>> TwoStageTupleSampler::SampleBatch(
    NodeId origin, size_t n) {
  // Same draws as the partial variant; only the timeout reporting
  // differs, so the two paths cannot diverge.
  DIGEST_ASSIGN_OR_RETURN(PartialTupleBatch batch,
                          SampleBatchPartial(origin, n));
  if (batch.timed_out) {
    return Status::Unavailable(
        "sampling hop budget exhausted before the batch completed");
  }
  return std::move(batch.samples);
}

Result<PartialTupleBatch> TwoStageTupleSampler::SampleBatchPartial(
    NodeId origin, size_t n) {
  if (db_->TotalTuples() == 0) {
    return Status::FailedPrecondition("relation R is empty");
  }
  PartialTupleBatch out;
  out.samples.reserve(n);
  size_t rounds = 0;
  while (out.samples.size() < n) {
    if (++rounds > 100) {
      return Status::Unavailable(
          "two-stage sampling repeatedly hit empty/departed nodes");
    }
    const size_t want = n - out.samples.size();
    DIGEST_ASSIGN_OR_RETURN(PartialBatch nodes,
                            op_->SampleNodesPartial(origin, want));
    for (NodeId node : nodes.nodes) {
      // Under churn the sampled node may have vanished between the walk
      // and the local draw, or may hold no tuples (weight raced with an
      // update); such draws are retried.
      Result<const LocalStore*> store = db_->StoreAt(node);
      if (!store.ok() || (*store)->Size() == 0) continue;
      DIGEST_ASSIGN_OR_RETURN(auto pick, (*store)->UniformSample(rng_));
      out.samples.push_back(TupleSample{TupleRef{node, pick.first},
                                        std::move(pick.second)});
    }
    if (nodes.timed_out) {
      // The walk budget is spent; hand back whatever completed instead
      // of spinning further rounds against a dead budget.
      out.timed_out = true;
      break;
    }
  }
  return out;
}

Result<std::vector<TupleSample>> ClusterSampler::SampleCluster(
    NodeId origin) {
  DIGEST_ASSIGN_OR_RETURN(NodeId node, op_->SampleNode(origin));
  DIGEST_ASSIGN_OR_RETURN(const LocalStore* store, db_->StoreAt(node));
  std::vector<TupleSample> out;
  out.reserve(store->Size());
  store->ForEach([&](LocalTupleId id, const Tuple& tuple) {
    out.push_back(TupleSample{TupleRef{node, id}, tuple});
  });
  return out;
}

Result<TupleSample> ExactTupleSampler::Sample() {
  DIGEST_ASSIGN_OR_RETURN(std::vector<TupleSample> batch, SampleBatch(1));
  return batch.front();
}

Result<std::vector<TupleSample>> ExactTupleSampler::SampleBatch(size_t n) {
  const size_t total = db_->TotalTuples();
  if (total == 0) {
    return Status::FailedPrecondition("relation R is empty");
  }
  // Content-size-weighted node pick followed by a uniform local pick is
  // exactly uniform over tuples.
  std::vector<NodeId> nodes = db_->Nodes();
  std::vector<double> weights(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    weights[i] = static_cast<double>(db_->ContentSize(nodes[i]));
  }
  std::vector<TupleSample> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const size_t pick = rng_.NextWeightedIndex(weights);
    if (pick >= nodes.size()) {
      return Status::Internal("weighted pick failed on non-empty relation");
    }
    DIGEST_ASSIGN_OR_RETURN(const LocalStore* store, db_->StoreAt(nodes[pick]));
    DIGEST_ASSIGN_OR_RETURN(auto tuple_pick, store->UniformSample(rng_));
    if (meter_ != nullptr) meter_->AddSampleTransfer();
    out.push_back(TupleSample{TupleRef{nodes[pick], tuple_pick.first},
                              std::move(tuple_pick.second)});
  }
  return out;
}

}  // namespace digest
