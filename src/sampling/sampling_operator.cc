#include "sampling/sampling_operator.h"

#include <cmath>
#include <utility>

namespace digest {
namespace {

size_t AutoLength(size_t node_count, double factor, bool squared) {
  const double ln_n = std::log(std::max<size_t>(node_count, 2));
  const double raw = squared ? factor * ln_n * ln_n : factor * ln_n;
  return static_cast<size_t>(std::ceil(std::max(raw, 1.0)));
}

}  // namespace

SamplingOperator::SamplingOperator(const Graph* graph, WeightFn weight,
                                   Rng rng, MessageMeter* meter,
                                   SamplingOperatorOptions options)
    : graph_(graph),
      weight_(std::move(weight)),
      rng_(rng),
      meter_(meter),
      options_(options) {}

size_t SamplingOperator::EffectiveWalkLength() const {
  if (options_.walk_length > 0) return options_.walk_length;
  return AutoLength(graph_->NodeCount(), options_.mixing_factor,
                    /*squared=*/true);
}

size_t SamplingOperator::EffectiveResetLength() const {
  if (options_.reset_length > 0) return options_.reset_length;
  return AutoLength(graph_->NodeCount(), options_.reset_factor,
                    /*squared=*/false);
}

Result<NodeId> SamplingOperator::SampleNode(NodeId origin) {
  DIGEST_ASSIGN_OR_RETURN(std::vector<NodeId> nodes, SampleNodes(origin, 1));
  return nodes.front();
}

Result<std::vector<NodeId>> SamplingOperator::SampleNodes(NodeId origin,
                                                          size_t n) {
  if (graph_->NodeCount() == 0) {
    return Status::FailedPrecondition("cannot sample an empty network");
  }
  NodeId fallback = origin;
  if (!graph_->HasNode(fallback)) {
    DIGEST_ASSIGN_OR_RETURN(fallback, graph_->RandomLiveNode(rng_));
  }
  std::vector<NodeId> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    size_t steps;
    RandomWalk* agent = nullptr;
    if (options_.warm_walks && next_agent_ < agents_.size()) {
      // Continue a converged agent: only the reset time is needed.
      agent = &agents_[next_agent_];
      steps = EffectiveResetLength();
    } else {
      agents_.emplace_back(fallback, options_.laziness);
      agent = &agents_.back();
      steps = EffectiveWalkLength();
    }
    ++next_agent_;
    DIGEST_RETURN_IF_ERROR(
        agent->Advance(*graph_, weight_, rng_, meter_, fallback, steps));
    // The agent reports the sampled node back to the originator.
    if (meter_ != nullptr) meter_->AddSampleTransfer();
    out.push_back(agent->current());
  }
  if (!options_.warm_walks) {
    agents_.clear();
  }
  // Round-robin reuse: the next batch starts over from the first agent.
  next_agent_ = 0;
  return out;
}

}  // namespace digest
