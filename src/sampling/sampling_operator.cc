#include "sampling/sampling_operator.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/metrics.h"
#include "obs/tracer.h"
#include "prof/profiler.h"

namespace digest {
namespace {

size_t AutoLength(size_t node_count, double factor, bool squared) {
  const double ln_n = std::log(std::max<size_t>(node_count, 2));
  const double raw = squared ? factor * ln_n * ln_n : factor * ln_n;
  return static_cast<size_t>(std::ceil(std::max(raw, 1.0)));
}

// Registry digests of one completed (or timed-out) batch. Buckets are
// fixed so dumps from different runs aggregate cleanly.
void ObserveBatch(obs::Registry* registry, const WalkTelemetry& telemetry,
                  size_t samples, bool timed_out) {
  if (registry == nullptr) return;
  registry->GetCounter("walk.batches")->Increment();
  registry->GetCounter("walk.samples")->Increment(samples);
  if (timed_out) registry->GetCounter("walk.timeouts")->Increment();
  registry->GetCounter("walk.agent_restarts")->Increment(telemetry.drops);
  if (telemetry.proposals > 0) {
    registry
        ->GetHistogram("walk.acceptance_rate",
                       obs::LinearBuckets(0.0, 1.0, 11))
        ->Observe(static_cast<double>(telemetry.accepted) /
                  static_cast<double>(telemetry.proposals));
  }
  if (samples > 0) {
    registry
        ->GetHistogram("walk.hops_per_sample",
                       obs::ExponentialBuckets(1.0, 2.0, 16))
        ->Observe(static_cast<double>(telemetry.attempts) /
                  static_cast<double>(samples));
  }
  registry
      ->GetHistogram("walk.retry_latency_ticks",
                     obs::ExponentialBuckets(1.0, 4.0, 12))
      ->Observe(static_cast<double>(telemetry.backoff_units));
}

}  // namespace

SamplingOperator::SamplingOperator(const Graph* graph, WeightFn weight,
                                   Rng rng, MessageMeter* meter,
                                   SamplingOperatorOptions options)
    : graph_(graph),
      weight_(std::move(weight)),
      rng_(rng),
      meter_(meter),
      options_(options) {}

size_t SamplingOperator::EffectiveWalkLength() const {
  if (options_.walk_length > 0) return options_.walk_length;
  return AutoLength(graph_->NodeCount(), options_.mixing_factor,
                    /*squared=*/true);
}

size_t SamplingOperator::EffectiveResetLength() const {
  if (options_.reset_length > 0) return options_.reset_length;
  return AutoLength(graph_->NodeCount(), options_.reset_factor,
                    /*squared=*/false);
}

Result<NodeId> SamplingOperator::SampleNode(NodeId origin) {
  DIGEST_ASSIGN_OR_RETURN(std::vector<NodeId> nodes, SampleNodes(origin, 1));
  return nodes.front();
}

Result<std::vector<NodeId>> SamplingOperator::SampleNodes(NodeId origin,
                                                          size_t n) {
  // Wall-clock cost of the whole batch; items = samples delivered
  // (including partial batches that time out under faults).
  prof::ScopedTimer batch_timer(profiler_, prof::Phase::kWalkBatch);
  if (graph_->NodeCount() == 0) {
    return Status::FailedPrecondition("cannot sample an empty network");
  }
  NodeId fallback = origin;
  if (!graph_->HasNode(fallback)) {
    DIGEST_ASSIGN_OR_RETURN(fallback, graph_->RandomLiveNode(rng_));
  }
  last_telemetry_ = WalkTelemetry();
  // Batch attempt budget, provisioned up front: a batch planned to take
  // S hops total may spend at most ceil(hop_budget_factor · S) attempt
  // units (hops, retries, and backoff delays) before it times out. The
  // budget is pooled across the whole batch so one unlucky agent (e.g.
  // repeatedly dropped mid-walk) can borrow slack from the others.
  uint64_t budget = 0;
  const size_t warm_pool =
      options_.warm_walks && agents_.size() > next_agent_
          ? agents_.size() - next_agent_
          : 0;
  const size_t warm = std::min(n, warm_pool);
  if (faults_ != nullptr) {
    const uint64_t planned =
        static_cast<uint64_t>(warm) * EffectiveResetLength() +
        static_cast<uint64_t>(n - warm) * EffectiveWalkLength();
    budget = static_cast<uint64_t>(std::ceil(
        options_.retry.hop_budget_factor * static_cast<double>(planned)));
  }
  if (obs::Tracing(tracer_)) {
    tracer_->Emit(obs::WalkBatchEvent{n, warm, EffectiveWalkLength(),
                                      EffectiveResetLength(), budget});
  }
  std::vector<NodeId> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    size_t steps;
    RandomWalk* agent = nullptr;
    if (options_.warm_walks && next_agent_ < agents_.size()) {
      // Continue a converged agent: only the reset time is needed.
      agent = &agents_[next_agent_];
      steps = EffectiveResetLength();
    } else {
      agents_.emplace_back(fallback, options_.laziness);
      agent = &agents_.back();
      steps = EffectiveWalkLength();
    }
    ++next_agent_;
    // One agent's stepping to convergence (cold mix or warm reset);
    // items count the attempted hops, so walk throughput in steps/sec
    // falls out of the phase stats.
    prof::ScopedTimer advance_timer(profiler_, prof::Phase::kWalkAdvance);
    if (faults_ == nullptr) {
      advance_timer.AddItems(steps);
      DIGEST_RETURN_IF_ERROR(agent->Advance(*graph_, weight_, rng_, meter_,
                                            fallback, steps,
                                            &last_telemetry_));
    } else {
      size_t remaining = steps;
      while (remaining > 0) {
        advance_timer.AddItems(1);
        if (last_telemetry_.attempts >= budget) {
          // Hop budget exhausted: the overlay is too lossy/stalled to
          // finish this batch in time. Reset the round-robin cursor so
          // the next call starts clean, and report a timeout the caller
          // can degrade on.
          next_agent_ = 0;
          if (obs::Tracing(tracer_)) {
            tracer_->Emit(obs::HopBudgetExhaustedEvent{
                last_telemetry_.attempts, budget});
          }
          ObserveBatch(registry_, last_telemetry_, out.size(),
                       /*timed_out=*/true);
          return Status::Unavailable(
              "sampling hop budget exhausted under faults (walk timeout)");
        }
        const uint64_t drops_before = last_telemetry_.drops;
        DIGEST_RETURN_IF_ERROR(agent->Step(*graph_, weight_, rng_, meter_,
                                           fallback, faults_,
                                           &options_.retry,
                                           &last_telemetry_));
        if (last_telemetry_.drops > drops_before) {
          // The agent was lost in transit and re-injected at the
          // origin: it must re-mix from cold before its position counts.
          remaining = EffectiveWalkLength();
          if (obs::Tracing(tracer_)) {
            tracer_->Emit(obs::AgentRestartEvent{i});
          }
        } else {
          --remaining;
        }
      }
    }
    // The agent reports the sampled node back to the originator.
    if (meter_ != nullptr) meter_->AddSampleTransfer();
    out.push_back(agent->current());
  }
  if (!options_.warm_walks) {
    agents_.clear();
  }
  // Round-robin reuse: the next batch starts over from the first agent.
  next_agent_ = 0;
  if (obs::Tracing(tracer_)) {
    if (last_telemetry_.stalled_steps > 0) {
      tracer_->Emit(obs::FaultStallEvent{last_telemetry_.stalled_steps});
    }
    tracer_->Emit(obs::WalkBatchDoneEvent{
        out.size(), last_telemetry_.attempts, last_telemetry_.retries,
        last_telemetry_.losses, last_telemetry_.drops,
        last_telemetry_.stalled_steps});
  }
  ObserveBatch(registry_, last_telemetry_, out.size(), /*timed_out=*/false);
  return out;
}

}  // namespace digest
