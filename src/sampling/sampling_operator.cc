#include "sampling/sampling_operator.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "diag/diag.h"
#include "exec/worker_pool.h"
#include "net/peer_health.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "prof/profiler.h"

namespace digest {
namespace {

size_t AutoLength(size_t node_count, double factor, bool squared) {
  const double ln_n = std::log(std::max<size_t>(node_count, 2));
  const double raw = squared ? factor * ln_n * ln_n : factor * ln_n;
  return static_cast<size_t>(std::ceil(std::max(raw, 1.0)));
}

// Registry digests of one completed (or timed-out) batch. Buckets are
// fixed so dumps from different runs aggregate cleanly.
void ObserveBatch(obs::Registry* registry, const WalkTelemetry& telemetry,
                  size_t samples, bool timed_out) {
  if (registry == nullptr) return;
  registry->GetCounter("walk.batches")->Increment();
  registry->GetCounter("walk.samples")->Increment(samples);
  if (timed_out) registry->GetCounter("walk.timeouts")->Increment();
  registry->GetCounter("walk.agent_restarts")->Increment(telemetry.drops);
  // Metropolis decision counters, reconcilable against MessageMeter:
  // every proposal sent one weight probe, every accepted move sent one
  // walk-hop message (obs_reconcile_test holds both equalities on a
  // static fault-free overlay).
  registry->GetCounter("walk.proposals")->Increment(telemetry.proposals);
  registry->GetCounter("walk.accepted")->Increment(telemetry.accepted);
  registry->GetCounter("walk.rejected")
      ->Increment(telemetry.proposals - telemetry.accepted);
  // Hedge counters only materialize once a hedge fires, so metric dumps
  // of non-hedged runs are byte-identical to the pre-hedge layout.
  if (telemetry.hedges > 0) {
    registry->GetCounter("walk.hedges")->Increment(telemetry.hedges);
    registry->GetCounter("walk.hedge_wins")->Increment(telemetry.hedge_wins);
  }
  if (telemetry.proposals > 0) {
    registry
        ->GetHistogram("walk.acceptance_rate",
                       obs::LinearBuckets(0.0, 1.0, 11))
        ->Observe(static_cast<double>(telemetry.accepted) /
                  static_cast<double>(telemetry.proposals));
  }
  if (samples > 0) {
    registry
        ->GetHistogram("walk.hops_per_sample",
                       obs::ExponentialBuckets(1.0, 2.0, 16))
        ->Observe(static_cast<double>(telemetry.attempts) /
                  static_cast<double>(samples));
  }
  registry
      ->GetHistogram("walk.retry_latency_ticks",
                     obs::ExponentialBuckets(1.0, 4.0, 12))
      ->Observe(static_cast<double>(telemetry.backoff_units));
}

// Sums every per-walk telemetry counter into the batch aggregate (the
// ordered post-barrier merge of the parallel mode).
void MergeTelemetry(WalkTelemetry& into, const WalkTelemetry& from) {
  into.attempts += from.attempts;
  into.retries += from.retries;
  into.losses += from.losses;
  into.drops += from.drops;
  into.abandoned += from.abandoned;
  into.stale_probes += from.stale_probes;
  into.stalled_steps += from.stalled_steps;
  into.proposals += from.proposals;
  into.accepted += from.accepted;
  into.backoff_units += from.backoff_units;
  into.hedges += from.hedges;
  into.hedge_wins += from.hedge_wins;
}

}  // namespace

SamplingOperator::SamplingOperator(const Graph* graph, WeightFn weight,
                                   Rng rng, MessageMeter* meter,
                                   SamplingOperatorOptions options)
    : graph_(graph),
      weight_(std::move(weight)),
      rng_(rng),
      meter_(meter),
      options_(options) {}

SamplingOperator::~SamplingOperator() = default;

size_t SamplingOperator::EffectiveWalkLength() const {
  if (options_.walk_length > 0) return options_.walk_length;
  return AutoLength(graph_->NodeCount(), options_.mixing_factor,
                    /*squared=*/true);
}

size_t SamplingOperator::EffectiveResetLength() const {
  if (options_.reset_length > 0) return options_.reset_length;
  return AutoLength(graph_->NodeCount(), options_.reset_factor,
                    /*squared=*/false);
}

Status HedgePolicy::Validate() const {
  if (!(straggler_factor >= 1.0)) {
    return Status::InvalidArgument("straggler_factor must be >= 1");
  }
  if (min_observations < 1) {
    return Status::InvalidArgument("min_observations must be >= 1");
  }
  return Status::OK();
}

Result<NodeId> SamplingOperator::SampleNode(NodeId origin) {
  DIGEST_ASSIGN_OR_RETURN(std::vector<NodeId> nodes, SampleNodes(origin, 1));
  return nodes.front();
}

uint64_t SamplingOperator::HedgeThreshold(size_t steps) const {
  if (!options_.hedge.enabled || faults_ == nullptr) return 0;
  if (done_walks_ < options_.hedge.min_observations || done_steps_ == 0) {
    return 0;
  }
  // Expected attempts for this agent = planned steps × the observed mean
  // attempts-per-step of completed walks (>= 1: a step costs at least
  // one attempt). Integer ceil keeps the threshold deterministic.
  const double mean_per_step =
      std::max(1.0, static_cast<double>(done_attempts_) /
                        static_cast<double>(done_steps_));
  return static_cast<uint64_t>(
      std::ceil(options_.hedge.straggler_factor * mean_per_step *
                static_cast<double>(steps)));
}

Result<std::vector<NodeId>> SamplingOperator::SampleNodes(NodeId origin,
                                                          size_t n) {
  DIGEST_ASSIGN_OR_RETURN(PartialBatch batch, SampleBatch(origin, n));
  if (batch.timed_out) {
    return Status::Unavailable(
        "sampling hop budget exhausted under faults (walk timeout)");
  }
  return std::move(batch.nodes);
}

Result<PartialBatch> SamplingOperator::SampleNodesPartial(NodeId origin,
                                                          size_t n) {
  return SampleBatch(origin, n);
}

Result<PartialBatch> SamplingOperator::SampleBatch(NodeId origin, size_t n) {
  if (options_.num_threads > 0) return SampleBatchParallel(origin, n);
  // Wall-clock cost of the whole batch; items = samples delivered
  // (including partial batches that time out under faults).
  prof::ScopedTimer batch_timer(profiler_, prof::Phase::kWalkBatch);
  if (graph_->NodeCount() == 0) {
    return Status::FailedPrecondition("cannot sample an empty network");
  }
  NodeId fallback = origin;
  if (!graph_->HasNode(fallback)) {
    DIGEST_ASSIGN_OR_RETURN(fallback, graph_->RandomLiveNode(rng_));
  }
  last_telemetry_ = WalkTelemetry();
  // Quarantine view, frozen before any walk launches: every walk in
  // this batch routes against the same breaker snapshot, and outcome
  // folds (which may flip breakers) happen only after a walk delivers.
  const QuarantineView health_view =
      health_ != nullptr ? health_->SnapshotView() : QuarantineView();
  const QuarantineView* qv = health_ != nullptr ? &health_view : nullptr;
  // Batch attempt budget, provisioned up front: a batch planned to take
  // S hops total may spend at most ceil(hop_budget_factor · S) attempt
  // units (hops, retries, and backoff delays) before it times out. The
  // budget is pooled across the whole batch so one unlucky agent (e.g.
  // repeatedly dropped mid-walk) can borrow slack from the others.
  uint64_t budget = 0;
  const size_t warm_pool =
      options_.warm_walks && agents_.size() > next_agent_
          ? agents_.size() - next_agent_
          : 0;
  const size_t warm = std::min(n, warm_pool);
  if (faults_ != nullptr) {
    const uint64_t planned =
        static_cast<uint64_t>(warm) * EffectiveResetLength() +
        static_cast<uint64_t>(n - warm) * EffectiveWalkLength();
    budget = static_cast<uint64_t>(std::ceil(
        options_.retry.hop_budget_factor * static_cast<double>(planned)));
  }
  if (obs::Tracing(tracer_)) {
    tracer_->Emit(obs::WalkBatchEvent{n, warm, EffectiveWalkLength(),
                                      EffectiveResetLength(), budget});
  }
  std::vector<NodeId> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    size_t steps;
    RandomWalk* agent = nullptr;
    if (options_.warm_walks && next_agent_ < agents_.size()) {
      // Continue a converged agent: only the reset time is needed.
      agent = &agents_[next_agent_];
      steps = EffectiveResetLength();
    } else {
      agents_.emplace_back(fallback, options_.laziness);
      agent = &agents_.back();
      steps = EffectiveWalkLength();
    }
    ++next_agent_;
    // Per-walk diagnostic record; folded only when this walk delivers.
    diag::WalkDiagBuffer walk_diag;
    diag::WalkDiagBuffer* wd = diag_ != nullptr ? &walk_diag : nullptr;
    // Per-walk transmission outcomes, same fold-on-delivery rule.
    WalkHealthBuffer walk_health;
    WalkHealthBuffer* wh = health_ != nullptr ? &walk_health : nullptr;
    // One agent's stepping to convergence (cold mix or warm reset);
    // items count the attempted hops, so walk throughput in steps/sec
    // falls out of the phase stats.
    prof::ScopedTimer advance_timer(profiler_, prof::Phase::kWalkAdvance);
    if (faults_ == nullptr) {
      advance_timer.AddItems(steps);
      DIGEST_RETURN_IF_ERROR(agent->Advance(*graph_, weight_, rng_, meter_,
                                            fallback, steps,
                                            &last_telemetry_, wd, qv, wh));
    } else {
      const uint64_t start_attempts = last_telemetry_.attempts;
      const uint64_t hedge_threshold = HedgeThreshold(steps);
      size_t remaining = steps;
      // Hedge race state: once the primary agent overruns the straggler
      // threshold, a redundant walk races it in virtual time (consumed
      // attempt units — the deterministic stand-in for wall clock).
      // Each round the walker that has spent fewer attempt units since
      // the launch steps next, so a primary burning retries in a lossy
      // neighborhood yields turns to a cheaply-progressing hedge, just
      // as two parallel walks would resolve in a real overlay. Both
      // draw from the shared rng_, so the whole race is a deterministic
      // function of the seed.
      RandomWalk hedge(fallback, options_.laziness);
      size_t hedge_remaining = 0;
      bool hedged = false;
      bool hedge_won = false;
      uint64_t primary_spent = 0;  // Attempt units since the hedge launch.
      uint64_t hedge_spent = 0;
      while (remaining > 0) {
        if (!hedged && hedge_threshold > 0 &&
            last_telemetry_.attempts - start_attempts >= hedge_threshold) {
          // Straggler detected: launch the redundant walk. Injecting the
          // agent costs one message; its hops are charged as ordinary
          // walk hops as it steps. The duplicate is routed through a
          // different replica when possible: it forks from the most
          // recently delivered agent's position — already mixed, so a
          // reset suffices, and in a different neighborhood than
          // wherever the straggler is stuck — and only falls back to a
          // cold walk from the origin when no such donor exists.
          hedged = true;
          NodeId hedge_origin = fallback;
          size_t hedge_length = EffectiveWalkLength();
          if (options_.warm_walks && next_agent_ >= 2) {
            const RandomWalk& donor = agents_[next_agent_ - 2];
            if (graph_->HasNode(donor.current())) {
              hedge_origin = donor.current();
              hedge_length = EffectiveResetLength();
            }
          }
          hedge = RandomWalk(hedge_origin, options_.laziness);
          hedge_remaining = hedge_length;
          primary_spent = 0;
          hedge_spent = 0;
          ++last_telemetry_.hedges;
          if (meter_ != nullptr) meter_->AddHedgeLaunch();
          if (obs::Tracing(tracer_)) {
            tracer_->Emit(obs::WalkHedgedEvent{
                i, last_telemetry_.attempts - start_attempts,
                hedge_threshold});
          }
        }
        advance_timer.AddItems(1);
        if (last_telemetry_.attempts >= budget) {
          // Hop budget exhausted: the overlay is too lossy/stalled to
          // finish this batch in time. Reset the round-robin cursor so
          // the next call starts clean, and report a timeout the caller
          // can degrade on (or finalize a partial snapshot from).
          next_agent_ = 0;
          if (obs::Tracing(tracer_)) {
            tracer_->Emit(obs::HopBudgetExhaustedEvent{
                last_telemetry_.attempts, budget});
          }
          ObserveBatch(registry_, last_telemetry_, out.size(),
                       /*timed_out=*/true);
          if (diag_ != nullptr) {
            diag_->FinishBatch(*graph_, weight_, last_telemetry_.proposals,
                               last_telemetry_.accepted, tracer_, registry_);
          }
          if (health_ != nullptr) health_->FinishBatch(graph_->NodeCount());
          return PartialBatch{std::move(out), /*timed_out=*/true};
        }
        const bool step_hedge = hedged && hedge_spent <= primary_spent;
        RandomWalk* walker = step_hedge ? &hedge : agent;
        size_t* walker_remaining = step_hedge ? &hedge_remaining : &remaining;
        const uint64_t drops_before = last_telemetry_.drops;
        const uint64_t attempts_before = last_telemetry_.attempts;
        DIGEST_RETURN_IF_ERROR(walker->Step(*graph_, weight_, rng_, meter_,
                                            fallback, faults_,
                                            &options_.retry,
                                            &last_telemetry_, wd, qv, wh));
        if (wd != nullptr) wd->RecordVisit(walker->current());
        const uint64_t spent = last_telemetry_.attempts - attempts_before;
        if (step_hedge) {
          hedge_spent += spent;
        } else if (hedged) {
          primary_spent += spent;
        }
        if (last_telemetry_.drops > drops_before) {
          // The walker was lost in transit and re-injected at the
          // origin: it must re-mix from cold before its position counts.
          *walker_remaining = EffectiveWalkLength();
          if (obs::Tracing(tracer_)) {
            tracer_->Emit(obs::AgentRestartEvent{i});
          }
        } else {
          --*walker_remaining;
        }
        if (hedged && hedge_remaining == 0) {
          // The hedge finished first in virtual time: its position
          // becomes the warm agent and the straggling primary is
          // abandoned mid-walk, its remaining hops never sent.
          *agent = hedge;
          ++last_telemetry_.hedge_wins;
          hedge_won = true;
          break;
        }
      }
      if (hedged) {
        // The race resolved: the losing walk's eventual delivery is
        // suppressed at the originator — bandwidth spent, no sample.
        (void)hedge_won;
        if (meter_ != nullptr) meter_->AddHedgedDuplicate();
      }
      // Completed-walk statistics feed future straggler thresholds.
      ++done_walks_;
      done_attempts_ += last_telemetry_.attempts - start_attempts;
      done_steps_ += steps;
    }
    // The agent reports the sampled node back to the originator.
    if (meter_ != nullptr) meter_->AddSampleTransfer();
    out.push_back(agent->current());
    if (wd != nullptr) diag_->FoldWalk(walk_diag);
    if (wh != nullptr) health_->FoldWalk(walk_health);
  }
  if (!options_.warm_walks) {
    agents_.clear();
  }
  // Round-robin reuse: the next batch starts over from the first agent.
  next_agent_ = 0;
  if (obs::Tracing(tracer_)) {
    if (last_telemetry_.stalled_steps > 0) {
      tracer_->Emit(obs::FaultStallEvent{last_telemetry_.stalled_steps});
    }
    tracer_->Emit(obs::WalkBatchDoneEvent{
        out.size(), last_telemetry_.attempts, last_telemetry_.retries,
        last_telemetry_.losses, last_telemetry_.drops,
        last_telemetry_.stalled_steps, last_telemetry_.hedges,
        last_telemetry_.hedge_wins});
  }
  ObserveBatch(registry_, last_telemetry_, out.size(), /*timed_out=*/false);
  if (diag_ != nullptr) {
    diag_->FinishBatch(*graph_, weight_, last_telemetry_.proposals,
                       last_telemetry_.accepted, tracer_, registry_);
  }
  if (health_ != nullptr) health_->FinishBatch(graph_->NodeCount());
  return PartialBatch{std::move(out), /*timed_out=*/false};
}

Result<PartialBatch> SamplingOperator::SampleBatchParallel(NodeId origin,
                                                           size_t n) {
  // Deterministic multi-threaded batch (DESIGN.md "Parallel execution &
  // determinism model"). Every source of randomness, fault injection,
  // accounting, and tracing is keyed by WALK INDEX and materialized into
  // a per-walk outcome slot; workers never touch shared state, and the
  // main thread merges the slots in walk-index order after the pool
  // barrier. The result is bit-identical for any num_threads >= 1.
  //
  // Deliberate semantic deltas vs the num_threads == 0 serial path
  // (which is preserved unchanged):
  //   * per-walk RNG/fault substreams (Rng::Split by walk index) instead
  //     of one shared stream threaded through the walks in sequence;
  //   * the hedge straggler threshold and the hedge donor position are
  //     frozen at batch start (completed-walk statistics update only at
  //     the merge) — concurrent walks cannot observe each other;
  //   * the pooled hop budget cuts at walk granularity: each walk is
  //     individually capped at the full pooled budget, and the merge
  //     accumulates accepted walks in index order until the budget is
  //     crossed — the walk that crosses it is charged (bandwidth was
  //     spent) but delivers no sample, and later walks are discarded
  //     outright, exactly as if they had never launched.
  prof::ScopedTimer batch_timer(profiler_, prof::Phase::kWalkBatch);
  if (graph_->NodeCount() == 0) {
    return Status::FailedPrecondition("cannot sample an empty network");
  }
  NodeId fallback = origin;
  if (!graph_->HasNode(fallback)) {
    DIGEST_ASSIGN_OR_RETURN(fallback, graph_->RandomLiveNode(rng_));
  }
  last_telemetry_ = WalkTelemetry();
  // Quarantine view frozen on the main thread before fan-out; workers
  // share it read-only, so routing is identical on any schedule.
  const QuarantineView health_view =
      health_ != nullptr ? health_->SnapshotView() : QuarantineView();
  const QuarantineView* qv = health_ != nullptr ? &health_view : nullptr;
  const size_t base = next_agent_;
  const size_t warm_pool =
      options_.warm_walks && agents_.size() > base ? agents_.size() - base : 0;
  const size_t warm = std::min(n, warm_pool);
  const size_t walk_len = EffectiveWalkLength();
  const size_t reset_len = EffectiveResetLength();
  uint64_t budget = 0;
  if (faults_ != nullptr) {
    const uint64_t planned =
        static_cast<uint64_t>(warm) * reset_len +
        static_cast<uint64_t>(n - warm) * walk_len;
    budget = static_cast<uint64_t>(std::ceil(
        options_.retry.hop_budget_factor * static_cast<double>(planned)));
  }
  const bool tracing = obs::Tracing(tracer_);
  if (tracing) {
    tracer_->Emit(obs::WalkBatchEvent{n, warm, walk_len, reset_len, budget});
  }

  // The batch key is the ONLY draw this batch takes from the operator's
  // stream: walk i's randomness comes from Split(2i) of an rng seeded by
  // the key, its fault substream key from Split(2i+1) — pure functions
  // of (stream state, i), identical on any worker and schedule.
  const uint64_t batch_key = rng_.NextU64();
  const Rng substream_base(batch_key);

  // Per-walk plan, fixed before fan-out so workers only read it. The
  // hedge donor is the start-of-batch position of walk i-1's agent (the
  // deterministic stand-in for the serial path's "most recently
  // delivered agent"): already mixed when it is a pre-batch warm agent,
  // so a reset suffices; a cold predecessor contributes only the
  // fallback, which keeps the cold walk length.
  struct WalkPlan {
    NodeId start = 0;
    size_t steps = 0;
    uint64_t threshold = 0;  // Hedge straggler threshold (0 = disarmed).
    NodeId hedge_origin = 0;
    size_t hedge_steps = 0;
    uint64_t fault_key = 0;
  };
  std::vector<WalkPlan> plans(n);
  for (size_t i = 0; i < n; ++i) {
    WalkPlan& plan = plans[i];
    const bool is_warm = options_.warm_walks && base + i < agents_.size();
    plan.start = is_warm ? agents_[base + i].current() : fallback;
    plan.steps = is_warm ? reset_len : walk_len;
    plan.threshold = HedgeThreshold(plan.steps);
    plan.hedge_origin = fallback;
    plan.hedge_steps = walk_len;
    if (options_.warm_walks && base + i >= 1) {
      const size_t donor = base + i - 1;
      const NodeId donor_pos =
          donor < agents_.size() ? agents_[donor].current() : fallback;
      if (graph_->HasNode(donor_pos)) {
        plan.hedge_origin = donor_pos;
        plan.hedge_steps = donor < agents_.size() ? reset_len : walk_len;
      }
    }
    Rng key_rng = substream_base.Split(2 * i + 1);
    plan.fault_key = key_rng.NextU64();
  }

  // Everything a walk produces, keyed by walk index; written by exactly
  // one worker, read by the main thread after the barrier.
  struct WalkOutcome {
    NodeId final_pos = 0;
    WalkTelemetry telemetry;
    MessageMeter meter;
    diag::WalkDiagBuffer diag;
    WalkHealthBuffer health;
    std::vector<obs::EventPayload> events;
    uint64_t fault_losses = 0;
    uint64_t fault_drops = 0;
    uint64_t fault_stale = 0;
    bool timed_out = false;  // Self-capped at the pooled budget.
  };
  std::vector<WalkOutcome> outcomes(n);

  if (pool_ == nullptr) {
    pool_ = std::make_unique<exec::WorkerPool>(options_.num_threads);
  }
  std::vector<prof::Track> tracks;
  tracks.reserve(pool_->num_threads());
  for (size_t w = 0; w < pool_->num_threads(); ++w) {
    tracks.emplace_back(profiler_);
  }

  const Status walk_status = pool_->ParallelFor(
      n, [&](size_t i, size_t worker) -> Status {
        WalkOutcome& out = outcomes[i];
        const WalkPlan& plan = plans[i];
        Rng walk_rng = substream_base.Split(2 * i);
        MessageMeter* wm = meter_ != nullptr ? &out.meter : nullptr;
        diag::WalkDiagBuffer* wd = diag_ != nullptr ? &out.diag : nullptr;
        WalkHealthBuffer* wh = health_ != nullptr ? &out.health : nullptr;
        RandomWalk agent(plan.start, options_.laziness);
        prof::ScopedTrackTimer advance_timer(&tracks[worker],
                                             prof::Phase::kWalkAdvance);
        if (faults_ == nullptr) {
          advance_timer.AddItems(plan.steps);
          DIGEST_RETURN_IF_ERROR(agent.Advance(*graph_, weight_, walk_rng,
                                               wm, fallback, plan.steps,
                                               &out.telemetry, wd, qv, wh));
        } else {
          FaultPlan sub = faults_->SpawnSubstream(plan.fault_key);
          obs::BufferTracer buffer;
          if (tracing) sub.SetTracer(&buffer);
          size_t remaining = plan.steps;
          // Hedge race in virtual time, exactly as in the serial path,
          // except both racers draw from this walk's substream and the
          // launch threshold/donor were frozen at batch start.
          RandomWalk hedge(fallback, options_.laziness);
          size_t hedge_remaining = 0;
          bool hedged = false;
          uint64_t primary_spent = 0;
          uint64_t hedge_spent = 0;
          while (remaining > 0) {
            if (!hedged && plan.threshold > 0 &&
                out.telemetry.attempts >= plan.threshold) {
              hedged = true;
              hedge = RandomWalk(plan.hedge_origin, options_.laziness);
              hedge_remaining = plan.hedge_steps;
              primary_spent = 0;
              hedge_spent = 0;
              ++out.telemetry.hedges;
              if (wm != nullptr) wm->AddHedgeLaunch();
              if (tracing) {
                buffer.Emit(obs::WalkHedgedEvent{i, out.telemetry.attempts,
                                                 plan.threshold});
              }
            }
            advance_timer.AddItems(1);
            if (out.telemetry.attempts >= budget) {
              // This walk alone exhausted the pooled budget; whether the
              // BATCH times out is decided at the merge, in index order.
              out.timed_out = true;
              break;
            }
            const bool step_hedge = hedged && hedge_spent <= primary_spent;
            RandomWalk* walker = step_hedge ? &hedge : &agent;
            size_t* walker_remaining =
                step_hedge ? &hedge_remaining : &remaining;
            const uint64_t drops_before = out.telemetry.drops;
            const uint64_t attempts_before = out.telemetry.attempts;
            DIGEST_RETURN_IF_ERROR(walker->Step(*graph_, weight_, walk_rng,
                                                wm, fallback, &sub,
                                                &options_.retry,
                                                &out.telemetry, wd, qv, wh));
            if (wd != nullptr) wd->RecordVisit(walker->current());
            const uint64_t spent = out.telemetry.attempts - attempts_before;
            if (step_hedge) {
              hedge_spent += spent;
            } else if (hedged) {
              primary_spent += spent;
            }
            if (out.telemetry.drops > drops_before) {
              *walker_remaining = walk_len;
              if (tracing) buffer.Emit(obs::AgentRestartEvent{i});
            } else {
              --*walker_remaining;
            }
            if (hedged && hedge_remaining == 0) {
              agent = hedge;
              ++out.telemetry.hedge_wins;
              break;
            }
          }
          if (hedged && !out.timed_out && wm != nullptr) {
            wm->AddHedgedDuplicate();
          }
          out.fault_losses = sub.losses_injected();
          out.fault_drops = sub.drops_injected();
          out.fault_stale = sub.stale_injected();
          if (tracing) out.events = std::move(buffer.payloads());
        }
        out.final_pos = agent.current();
        return Status::OK();
      });

  // Worker wall time folds into the shared profiler on this side of the
  // barrier only; the deterministic parts (calls, items) are per-walk
  // counts, so the fold is schedule-independent.
  if (profiler_ != nullptr) {
    for (size_t w = 0; w < tracks.size(); ++w) {
      profiler_->FoldTrack(w, tracks[w]);
    }
  }
  DIGEST_RETURN_IF_ERROR(walk_status);

  // Ordered merge: accept walks in index order until the pooled budget
  // is crossed. Each accepted/charged walk commits its meter counts,
  // fault injections, buffered trace events (stamped with lane = walk
  // index), telemetry, and final agent position.
  std::vector<NodeId> out;
  out.reserve(n);
  uint64_t cum_attempts = 0;
  bool cut = false;
  for (size_t i = 0; i < n; ++i) {
    if (faults_ != nullptr && cum_attempts >= budget) {
      // Budget crossed at a walk boundary: this walk and all later ones
      // are discarded as if never launched (their agents keep their
      // start-of-batch positions).
      cut = true;
      break;
    }
    WalkOutcome& o = outcomes[i];
    if (meter_ != nullptr) meter_->Merge(o.meter);
    if (faults_ != nullptr) {
      faults_->AbsorbInjections(o.fault_losses, o.fault_drops,
                                o.fault_stale);
    }
    if (tracing) {
      for (obs::EventPayload& payload : o.events) {
        tracer_->EmitLane(std::move(payload), static_cast<int64_t>(i));
      }
    }
    MergeTelemetry(last_telemetry_, o.telemetry);
    if (base + i < agents_.size()) {
      agents_[base + i] = RandomWalk(o.final_pos, options_.laziness);
    } else {
      agents_.emplace_back(o.final_pos, options_.laziness);
    }
    if (o.timed_out) {
      // The walk spent its budget without delivering: charged, no
      // sample, and the batch is cut here.
      cut = true;
      break;
    }
    out.push_back(o.final_pos);
    // Delivered walk: its diagnostic record folds here, in walk-index
    // order on the main thread — the fold order (and hence all diag
    // state) is independent of worker scheduling.
    if (diag_ != nullptr) diag_->FoldWalk(o.diag);
    if (health_ != nullptr) health_->FoldWalk(o.health);
    cum_attempts += o.telemetry.attempts;
    if (faults_ != nullptr) {
      ++done_walks_;
      done_attempts_ += o.telemetry.attempts;
      done_steps_ += plans[i].steps;
    }
    if (meter_ != nullptr) meter_->AddSampleTransfer();
  }

  next_agent_ = 0;
  if (cut) {
    if (tracing) {
      tracer_->Emit(obs::HopBudgetExhaustedEvent{last_telemetry_.attempts,
                                                 budget});
    }
    ObserveBatch(registry_, last_telemetry_, out.size(), /*timed_out=*/true);
    if (diag_ != nullptr) {
      diag_->FinishBatch(*graph_, weight_, last_telemetry_.proposals,
                         last_telemetry_.accepted, tracer_, registry_);
    }
    if (health_ != nullptr) health_->FinishBatch(graph_->NodeCount());
    return PartialBatch{std::move(out), /*timed_out=*/true};
  }
  if (!options_.warm_walks) {
    agents_.clear();
  }
  if (tracing) {
    if (last_telemetry_.stalled_steps > 0) {
      tracer_->Emit(obs::FaultStallEvent{last_telemetry_.stalled_steps});
    }
    tracer_->Emit(obs::WalkBatchDoneEvent{
        out.size(), last_telemetry_.attempts, last_telemetry_.retries,
        last_telemetry_.losses, last_telemetry_.drops,
        last_telemetry_.stalled_steps, last_telemetry_.hedges,
        last_telemetry_.hedge_wins});
  }
  ObserveBatch(registry_, last_telemetry_, out.size(), /*timed_out=*/false);
  if (diag_ != nullptr) {
    diag_->FinishBatch(*graph_, weight_, last_telemetry_.proposals,
                       last_telemetry_.accepted, tracer_, registry_);
  }
  if (health_ != nullptr) health_->FinishBatch(graph_->NodeCount());
  return PartialBatch{std::move(out), /*timed_out=*/false};
}

SamplingOperator::State SamplingOperator::SaveState() const {
  State state;
  state.agent_positions.reserve(agents_.size());
  for (const RandomWalk& agent : agents_) {
    state.agent_positions.push_back(agent.current());
  }
  state.next_agent = next_agent_;
  state.rng = rng_.SaveState();
  state.done_walks = done_walks_;
  state.done_attempts = done_attempts_;
  state.done_steps = done_steps_;
  return state;
}

void SamplingOperator::RestoreState(const State& state) {
  agents_.clear();
  agents_.reserve(state.agent_positions.size());
  for (NodeId position : state.agent_positions) {
    agents_.emplace_back(position, options_.laziness);
  }
  next_agent_ = static_cast<size_t>(state.next_agent);
  rng_.RestoreState(state.rng);
  done_walks_ = state.done_walks;
  done_attempts_ = state.done_attempts;
  done_steps_ = state.done_steps;
  last_telemetry_ = WalkTelemetry();
}

}  // namespace digest
