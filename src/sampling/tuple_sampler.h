#ifndef DIGEST_SAMPLING_TUPLE_SAMPLER_H_
#define DIGEST_SAMPLING_TUPLE_SAMPLER_H_

#include <vector>

#include "common/result.h"
#include "db/p2p_database.h"
#include "net/message_meter.h"
#include "numeric/rng.h"
#include "sampling/sampling_operator.h"

namespace digest {

/// A drawn sample: the tuple value plus the reference needed to revisit
/// it (repeated sampling retains samples across occasions and
/// re-evaluates them in place, §IV-B2).
struct TupleSample {
  TupleRef ref;
  Tuple tuple;
};

/// A tuple batch that may have been cut short by the sampling hop
/// budget: `samples` holds whatever completed before `timed_out` became
/// true (the raw material for a deadline-budgeted partial snapshot).
struct PartialTupleBatch {
  std::vector<TupleSample> samples;
  bool timed_out = false;
};

/// Uniform tuple sampling from R by the two-stage scheme of §III:
/// stage 1 draws a node via the sampling operator S with the
/// content-size weight w_v = m_v; stage 2 draws a tuple uniformly from
/// the sampled node's local store. The product distribution is uniform
/// over all tuples of R.
///
/// Holds references to the database and operator; both must outlive it.
class TwoStageTupleSampler {
 public:
  TwoStageTupleSampler(const P2PDatabase* db, SamplingOperator* op, Rng rng)
      : db_(db), op_(op), rng_(rng) {}

  /// Draws one uniform tuple sample, originating walks at `origin`.
  /// Fails when the relation is empty.
  Result<TupleSample> Sample(NodeId origin);

  /// Draws `n` samples (with replacement) in batch mode.
  Result<std::vector<TupleSample>> SampleBatch(NodeId origin, size_t n);

  /// Deadline-budgeted variant: identical draws and accounting to
  /// SampleBatch, but when the operator's hop budget times out it
  /// returns the samples completed so far with timed_out = true instead
  /// of failing with kUnavailable.
  Result<PartialTupleBatch> SampleBatchPartial(NodeId origin, size_t n);

  /// Serializable stage-2 RNG stream (the local uniform tuple pick), for
  /// the engine checkpoint. The stage-1 walk stream lives in the
  /// SamplingOperator's own state.
  Rng::State SaveRngState() const { return rng_.SaveState(); }
  void RestoreRngState(const Rng::State& state) { rng_.RestoreState(state); }

 private:
  const P2PDatabase* db_;
  SamplingOperator* op_;
  Rng rng_;
};

/// Cluster sampling (§III discusses and rejects it for Digest): stage 1
/// draws a node uniformly via S, and *all* tuples of the node are taken
/// as a batch. Provided as a comparator; with intra-node correlation it
/// yields visibly worse estimates (see tests and bench ablation).
class ClusterSampler {
 public:
  ClusterSampler(const P2PDatabase* db, SamplingOperator* op)
      : db_(db), op_(op) {}

  /// Draws the full content of one uniformly sampled node.
  Result<std::vector<TupleSample>> SampleCluster(NodeId origin);

 private:
  const P2PDatabase* db_;
  SamplingOperator* op_;
};

/// Centralized uniform tuple sampler with global knowledge — the
/// "optimal sampling" comparator the paper measures S against. Same
/// interface, zero walk cost: one transfer message per sample.
class ExactTupleSampler {
 public:
  ExactTupleSampler(const P2PDatabase* db, Rng rng, MessageMeter* meter)
      : db_(db), rng_(rng), meter_(meter) {}

  /// Draws one exactly uniform tuple sample. Fails when R is empty.
  Result<TupleSample> Sample();

  /// Draws `n` samples with replacement.
  Result<std::vector<TupleSample>> SampleBatch(size_t n);

  /// Serializable draw stream, for the engine checkpoint.
  Rng::State SaveRngState() const { return rng_.SaveState(); }
  void RestoreRngState(const Rng::State& state) { rng_.RestoreState(state); }

 private:
  const P2PDatabase* db_;
  Rng rng_;
  MessageMeter* meter_;
};

}  // namespace digest

#endif  // DIGEST_SAMPLING_TUPLE_SAMPLER_H_
