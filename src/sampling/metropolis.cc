#include "sampling/metropolis.h"

#include <cmath>

namespace digest {

double MetropolisAcceptance(double weight_i, size_t degree_i, double weight_j,
                            size_t degree_j) {
  if (weight_j <= 0.0) return 0.0;  // Never move onto zero-weight nodes.
  if (weight_i <= 0.0) return 1.0;  // Always escape zero-weight nodes.
  const double ratio = (weight_j * static_cast<double>(degree_i)) /
                       (weight_i * static_cast<double>(degree_j));
  return ratio >= 1.0 ? 1.0 : ratio;
}

Result<ForwardingMatrix> BuildForwardingMatrix(const Graph& graph,
                                               const WeightFn& weight,
                                               double laziness) {
  if (laziness < 0.0 || laziness >= 1.0) {
    return Status::InvalidArgument("laziness must be in [0, 1)");
  }
  std::vector<NodeId> nodes = graph.LiveNodes();
  const size_t n = nodes.size();
  if (n == 0) {
    return Status::FailedPrecondition("graph has no live nodes");
  }
  if (!graph.IsConnected()) {
    return Status::FailedPrecondition(
        "forwarding-matrix analysis requires a connected graph");
  }
  // Dense index of node ids.
  std::vector<size_t> row_of(graph.NextId(), 0);
  for (size_t r = 0; r < n; ++r) row_of[nodes[r]] = r;

  std::vector<double> weights(n, 0.0);
  double total_weight = 0.0;
  for (size_t r = 0; r < n; ++r) {
    weights[r] = weight(nodes[r]);
    if (!(weights[r] > 0.0)) {
      return Status::InvalidArgument(
          "spectral analysis requires strictly positive weights");
    }
    total_weight += weights[r];
  }

  ForwardingMatrix fm;
  fm.nodes = std::move(nodes);
  fm.pi.resize(n);
  for (size_t r = 0; r < n; ++r) fm.pi[r] = weights[r] / total_weight;

  fm.p = Matrix(n, n);
  for (size_t r = 0; r < n; ++r) {
    const NodeId i = fm.nodes[r];
    const size_t di = graph.Degree(i);
    double off_diagonal = 0.0;
    for (NodeId j : graph.Neighbors(i)) {
      const size_t c = row_of[j];
      const double accept = MetropolisAcceptance(
          weights[r], di, weights[c], graph.Degree(j));
      const double pij =
          (1.0 - laziness) * accept / static_cast<double>(di);
      fm.p(r, c) = pij;
      off_diagonal += pij;
    }
    fm.p(r, r) = 1.0 - off_diagonal;
  }
  return fm;
}

Result<size_t> RecommendWalkLength(const Graph& graph,
                                   const WeightFn& weight, double gamma,
                                   double laziness) {
  if (!(gamma > 0.0 && gamma < 1.0)) {
    return Status::InvalidArgument("gamma must be in (0, 1)");
  }
  DIGEST_ASSIGN_OR_RETURN(ForwardingMatrix fm,
                          BuildForwardingMatrix(graph, weight, laziness));
  DIGEST_ASSIGN_OR_RETURN(double lambda2,
                          SecondEigenvalueMagnitude(fm.p, fm.pi));
  const double gap = 1.0 - lambda2;
  if (gap <= 1e-9) {
    return Status::NumericError(
        "chain has (numerically) no spectral gap; walks will not mix");
  }
  double pi_min = 1.0;
  for (double p : fm.pi) pi_min = std::min(pi_min, p);
  const double bound = std::log(1.0 / (pi_min * gamma)) / gap;
  return static_cast<size_t>(std::ceil(bound));
}

Result<double> TotalVariationDistance(const std::vector<double>& a,
                                      const std::vector<double>& b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument(
        "TV distance requires equal-size distributions");
  }
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += std::fabs(a[i] - b[i]);
  return 0.5 * acc;
}

Result<std::vector<double>> DistributionAfter(const ForwardingMatrix& fm,
                                              const std::vector<double>& pi0,
                                              size_t steps) {
  if (pi0.size() != fm.p.rows()) {
    return Status::InvalidArgument("initial distribution has wrong size");
  }
  std::vector<double> dist = pi0;
  for (size_t t = 0; t < steps; ++t) {
    dist = fm.p.VecMat(dist);
  }
  return dist;
}

Result<size_t> MixingTime(const ForwardingMatrix& fm, double gamma,
                          size_t max_steps) {
  const size_t n = fm.p.rows();
  if (n == 0) {
    return Status::FailedPrecondition("empty forwarding matrix");
  }
  // Track the distribution from every deterministic start simultaneously
  // (rows of P^t) and stop when the worst start is within gamma.
  Matrix power = Matrix::Identity(n);
  for (size_t t = 0; t <= max_steps; ++t) {
    double worst = 0.0;
    for (size_t r = 0; r < n; ++r) {
      double tv = 0.0;
      for (size_t c = 0; c < n; ++c) {
        tv += std::fabs(power(r, c) - fm.pi[c]);
      }
      worst = std::max(worst, 0.5 * tv);
      if (worst > gamma) break;  // Already over budget; no need to finish.
    }
    if (worst <= gamma) return t;
    power = power.MatMul(fm.p);
  }
  return Status::NumericError("walk did not mix within max_steps");
}

}  // namespace digest
