#include "sampling/random_walk.h"

#include "diag/diag.h"
#include "sampling/metropolis.h"

namespace digest {
namespace {

// Delivers one message over (from, to) under faults, retransmitting
// with exponential backoff. The first transmission is pre-charged by
// the caller in its own meter category (probe/hop); this helper charges
// only the recovery traffic: one retry message per retransmission, plus
// the backoff delay in budget units. Returns false when the message is
// abandoned after RetryPolicy::max_attempts sends (or the receiver is
// blackholed and every send goes unanswered).
bool TryDeliver(FaultPlan& faults, const RetryPolicy& retry, NodeId from,
                NodeId to, MessageMeter* meter, WalkTelemetry* telemetry) {
  const bool blackholed = faults.IsBlackholed(to);
  for (size_t attempt = 1;; ++attempt) {
    const bool lost = blackholed || faults.LoseMessage(from, to);
    if (!lost) return true;
    if (meter != nullptr) meter->AddLoss();
    if (telemetry != nullptr) ++telemetry->losses;
    if (attempt >= retry.max_attempts) return false;
    // Retransmit after the deterministic backoff delay.
    if (meter != nullptr) meter->AddRetry();
    if (telemetry != nullptr) {
      ++telemetry->retries;
      telemetry->attempts += retry.BackoffCost(attempt);
      telemetry->backoff_units += retry.BackoffCost(attempt);
    }
  }
}

}  // namespace

Status RandomWalk::Step(const Graph& graph, const WeightFn& weight, Rng& rng,
                        MessageMeter* meter, NodeId fallback,
                        FaultPlan* faults, const RetryPolicy* retry,
                        WalkTelemetry* telemetry,
                        diag::WalkDiagBuffer* diag) {
  static const RetryPolicy kDefaultRetry;
  if (faults != nullptr && retry == nullptr) retry = &kDefaultRetry;
  if (telemetry != nullptr) ++telemetry->attempts;
  if (!graph.HasNode(current_)) {
    // The node hosting the agent left the network; the originator
    // restarts the agent (one message to re-inject it).
    if (!graph.HasNode(fallback)) {
      return Status::Unavailable("walk origin left the network");
    }
    current_ = fallback;
    if (meter != nullptr) meter->AddWalkHop();
  }
  if (faults != nullptr && faults->IsBlackholed(current_)) {
    // The host is stalled: the agent is frozen until the node wakes up.
    if (telemetry != nullptr) ++telemetry->stalled_steps;
    return Status::OK();
  }
  // Laziness: self-loop with the configured probability, free of
  // messages (½ in the paper, Eq. 12's prefactor).
  if (laziness_ > 0.0 && rng.NextBernoulli(laziness_)) {
    return Status::OK();
  }
  const size_t degree = graph.Degree(current_);
  if (degree == 0) {
    // Isolated node (transiently possible under churn): stay.
    return Status::OK();
  }
  DIGEST_ASSIGN_OR_RETURN(NodeId proposal,
                          graph.RandomNeighbor(current_, rng));
  // Probing the neighbor's weight costs one message (charged whether or
  // not the transmission survives — the sender pays for the send).
  if (meter != nullptr) meter->AddWeightProbe();
  if (telemetry != nullptr) ++telemetry->proposals;
  if (diag != nullptr) diag->RecordProbe(current_, proposal);
  if (faults != nullptr &&
      !TryDeliver(*faults, *retry, current_, proposal, meter, telemetry)) {
    // Probe never answered within the retry budget: abandon the
    // transition, the agent stays put.
    if (telemetry != nullptr) ++telemetry->abandoned;
    return Status::OK();
  }
  double proposal_weight = weight(proposal);
  if (faults != nullptr && faults->StaleProbe()) {
    // The probe was answered from a stale cache: the acceptance test
    // sees a distorted weight. The chain's target distribution bends
    // accordingly — degradation the widened intervals account for.
    proposal_weight = faults->DistortWeight(proposal_weight);
    if (telemetry != nullptr) ++telemetry->stale_probes;
  }
  const double accept = MetropolisAcceptance(weight(current_), degree,
                                             proposal_weight,
                                             graph.Degree(proposal));
  if (rng.NextBernoulli(accept)) {
    if (meter != nullptr) meter->AddWalkHop();
    if (telemetry != nullptr) ++telemetry->accepted;
    if (diag != nullptr) diag->RecordHop(current_, proposal);
    if (faults != nullptr) {
      if (!TryDeliver(*faults, *retry, current_, proposal, meter,
                      telemetry)) {
        // Forward message abandoned: the agent never left.
        if (telemetry != nullptr) ++telemetry->abandoned;
        return Status::OK();
      }
      if (faults->DropAgent()) {
        // Delivered, but the agent state was lost in transit. The
        // originator re-injects the agent from the origin — the same
        // recovery as a churn-stranded agent, except the walk must
        // re-mix (the caller extends its remaining steps).
        if (meter != nullptr) meter->AddAgentRestart();
        if (telemetry != nullptr) ++telemetry->drops;
        if (!graph.HasNode(fallback)) {
          return Status::Unavailable(
              "dropped agent's origin left the network");
        }
        current_ = fallback;
        return Status::OK();
      }
    }
    current_ = proposal;
  }
  return Status::OK();
}

Status RandomWalk::Advance(const Graph& graph, const WeightFn& weight,
                           Rng& rng, MessageMeter* meter, NodeId fallback,
                           size_t steps, WalkTelemetry* telemetry,
                           diag::WalkDiagBuffer* diag) {
  for (size_t i = 0; i < steps; ++i) {
    DIGEST_RETURN_IF_ERROR(Step(graph, weight, rng, meter, fallback,
                                /*faults=*/nullptr, /*retry=*/nullptr,
                                telemetry, diag));
    if (diag != nullptr) diag->RecordVisit(current_);
  }
  return Status::OK();
}

}  // namespace digest
