#include "sampling/random_walk.h"

#include "sampling/metropolis.h"

namespace digest {

Status RandomWalk::Step(const Graph& graph, const WeightFn& weight, Rng& rng,
                        MessageMeter* meter, NodeId fallback) {
  if (!graph.HasNode(current_)) {
    // The node hosting the agent left the network; the originator
    // restarts the agent (one message to re-inject it).
    if (!graph.HasNode(fallback)) {
      return Status::Unavailable("walk origin left the network");
    }
    current_ = fallback;
    if (meter != nullptr) meter->AddWalkHop();
  }
  // Laziness: self-loop with the configured probability, free of
  // messages (½ in the paper, Eq. 12's prefactor).
  if (laziness_ > 0.0 && rng.NextBernoulli(laziness_)) {
    return Status::OK();
  }
  const size_t degree = graph.Degree(current_);
  if (degree == 0) {
    // Isolated node (transiently possible under churn): stay.
    return Status::OK();
  }
  DIGEST_ASSIGN_OR_RETURN(NodeId proposal,
                          graph.RandomNeighbor(current_, rng));
  // Probing the neighbor's weight costs one message.
  if (meter != nullptr) meter->AddWeightProbe();
  const double accept =
      MetropolisAcceptance(weight(current_), degree, weight(proposal),
                           graph.Degree(proposal));
  if (rng.NextBernoulli(accept)) {
    current_ = proposal;
    if (meter != nullptr) meter->AddWalkHop();
  }
  return Status::OK();
}

Status RandomWalk::Advance(const Graph& graph, const WeightFn& weight,
                           Rng& rng, MessageMeter* meter, NodeId fallback,
                           size_t steps) {
  for (size_t i = 0; i < steps; ++i) {
    DIGEST_RETURN_IF_ERROR(Step(graph, weight, rng, meter, fallback));
  }
  return Status::OK();
}

}  // namespace digest
