#include "sampling/random_walk.h"

#include "diag/diag.h"
#include "net/peer_health.h"
#include "sampling/metropolis.h"

namespace digest {
namespace {

// Saturating add for the telemetry budget counters: BackoffCost already
// saturates at SIZE_MAX, and a saturated cost added to a running total
// must pin at the ceiling rather than wrap past it.
uint64_t SatAdd(uint64_t a, uint64_t b) {
  uint64_t sum;
  if (__builtin_add_overflow(a, b, &sum)) return UINT64_MAX;
  return sum;
}

// Delivers one message over (from, to) under faults, retransmitting
// with exponential backoff. The first transmission is pre-charged by
// the caller in its own meter category (probe/hop); this helper charges
// only the recovery traffic: one retry message per retransmission, plus
// the backoff delay in budget units. Returns false when the message is
// abandoned after RetryPolicy::max_attempts sends (or the receiver is
// blackholed and every send goes unanswered). Every transmission's
// (receiver, delivered) outcome lands in `health` (may be null) — the
// raw evidence the peer-health monitor accrues suspicion from.
bool TryDeliver(FaultPlan& faults, const RetryPolicy& retry, NodeId from,
                NodeId to, MessageMeter* meter, WalkTelemetry* telemetry,
                WalkHealthBuffer* health) {
  const bool blackholed = faults.IsBlackholed(to);
  for (size_t attempt = 1;; ++attempt) {
    const bool lost = blackholed || faults.LoseMessage(from, to);
    if (!lost) {
      if (health != nullptr) health->RecordSuccess(to);
      return true;
    }
    if (health != nullptr) health->RecordFailure(to);
    if (meter != nullptr) meter->AddLoss();
    if (telemetry != nullptr) ++telemetry->losses;
    if (attempt >= retry.max_attempts) return false;
    // Retransmit after the deterministic backoff delay. A cost that
    // saturated to UINT64_MAX is a wait no hop budget could ever
    // afford: abandon the message instead of retransmitting, so an
    // adversarial max_attempts cannot turn total loss into an
    // unbounded retry loop (the budget check lives between steps).
    const uint64_t cost = retry.BackoffCost(attempt);
    if (cost == UINT64_MAX) return false;
    if (meter != nullptr) meter->AddRetry();
    if (telemetry != nullptr) {
      ++telemetry->retries;
      telemetry->attempts = SatAdd(telemetry->attempts, cost);
      telemetry->backoff_units = SatAdd(telemetry->backoff_units, cost);
    }
  }
}

// Neighbors of `node` that are not quarantined — the node's degree in
// the subgraph induced by live nodes.
size_t LiveDegree(const Graph& graph, NodeId node,
                  const QuarantineView& quarantine) {
  size_t live = 0;
  for (NodeId n : graph.Neighbors(node)) {
    if (!quarantine.Quarantined(n)) ++live;
  }
  return live;
}

}  // namespace

Status RandomWalk::Step(const Graph& graph, const WeightFn& weight, Rng& rng,
                        MessageMeter* meter, NodeId fallback,
                        FaultPlan* faults, const RetryPolicy* retry,
                        WalkTelemetry* telemetry,
                        diag::WalkDiagBuffer* diag,
                        const QuarantineView* quarantine,
                        WalkHealthBuffer* health) {
  static const RetryPolicy kDefaultRetry;
  if (faults != nullptr && retry == nullptr) retry = &kDefaultRetry;
  if (telemetry != nullptr) ++telemetry->attempts;
  if (!graph.HasNode(current_)) {
    // The node hosting the agent left the network; the originator
    // restarts the agent (one message to re-inject it).
    if (!graph.HasNode(fallback)) {
      return Status::Unavailable("walk origin left the network");
    }
    current_ = fallback;
    if (meter != nullptr) meter->AddWalkHop();
  }
  if (faults != nullptr && faults->IsBlackholed(current_)) {
    // The host is stalled: the agent is frozen until the node wakes up.
    // A frozen step is also health evidence against the host.
    if (telemetry != nullptr) ++telemetry->stalled_steps;
    if (health != nullptr) health->RecordFailure(current_);
    return Status::OK();
  }
  // Laziness: self-loop with the configured probability, free of
  // messages (½ in the paper, Eq. 12's prefactor).
  if (laziness_ > 0.0 && rng.NextBernoulli(laziness_)) {
    return Status::OK();
  }
  const size_t degree = graph.Degree(current_);
  if (degree == 0) {
    // Isolated node (transiently possible under churn): stay.
    return Status::OK();
  }
  // Quarantine-aware routing: with a non-empty quarantine view, the
  // proposal is uniform over the LIVE (non-quarantined) neighbors and
  // both degree corrections below use live degrees — the walk becomes
  // the Metropolis chain on the induced live subgraph, whose stationary
  // distribution is the same weight target restricted to live nodes.
  // An empty view must draw through graph.RandomNeighbor exactly, so an
  // attached-but-idle monitor stays bit-identical to no monitor.
  const bool routed = quarantine != nullptr && quarantine->Any();
  NodeId proposal = kInvalidNode;
  size_t degree_i = degree;
  if (routed) {
    const size_t live = LiveDegree(graph, current_, *quarantine);
    if (live == 0) {
      // Every neighbor is quarantined: hold position this step (the
      // next batch routes against a fresh view).
      return Status::OK();
    }
    degree_i = live;
    size_t pick = rng.NextIndex(live);
    for (NodeId n : graph.Neighbors(current_)) {
      if (quarantine->Quarantined(n)) continue;
      if (pick == 0) {
        proposal = n;
        break;
      }
      --pick;
    }
  } else {
    DIGEST_ASSIGN_OR_RETURN(proposal, graph.RandomNeighbor(current_, rng));
  }
  // Probing the neighbor's weight costs one message (charged whether or
  // not the transmission survives — the sender pays for the send).
  if (meter != nullptr) meter->AddWeightProbe();
  if (telemetry != nullptr) ++telemetry->proposals;
  if (diag != nullptr) diag->RecordProbe(current_, proposal);
  if (faults != nullptr) {
    if (!TryDeliver(*faults, *retry, current_, proposal, meter, telemetry,
                    health)) {
      // Probe never answered within the retry budget: abandon the
      // transition, the agent stays put.
      if (telemetry != nullptr) ++telemetry->abandoned;
      return Status::OK();
    }
  } else if (health != nullptr) {
    health->RecordSuccess(proposal);
  }
  double proposal_weight = weight(proposal);
  if (faults != nullptr && faults->StaleProbe()) {
    // The probe was answered from a stale cache: the acceptance test
    // sees a distorted weight. The chain's target distribution bends
    // accordingly — degradation the widened intervals account for.
    proposal_weight = faults->DistortWeight(proposal_weight);
    if (telemetry != nullptr) ++telemetry->stale_probes;
  }
  const size_t degree_j = routed
                              ? LiveDegree(graph, proposal, *quarantine)
                              : graph.Degree(proposal);
  const double accept = MetropolisAcceptance(weight(current_), degree_i,
                                             proposal_weight, degree_j);
  if (rng.NextBernoulli(accept)) {
    if (meter != nullptr) meter->AddWalkHop();
    if (telemetry != nullptr) ++telemetry->accepted;
    if (diag != nullptr) diag->RecordHop(current_, proposal);
    if (faults != nullptr) {
      if (!TryDeliver(*faults, *retry, current_, proposal, meter,
                      telemetry, health)) {
        // Forward message abandoned: the agent never left.
        if (telemetry != nullptr) ++telemetry->abandoned;
        return Status::OK();
      }
      if (faults->DropAgent()) {
        // Delivered, but the agent state was lost in transit. The
        // originator re-injects the agent from the origin — the same
        // recovery as a churn-stranded agent, except the walk must
        // re-mix (the caller extends its remaining steps).
        if (meter != nullptr) meter->AddAgentRestart();
        if (telemetry != nullptr) ++telemetry->drops;
        if (!graph.HasNode(fallback)) {
          return Status::Unavailable(
              "dropped agent's origin left the network");
        }
        current_ = fallback;
        return Status::OK();
      }
    } else if (health != nullptr) {
      health->RecordSuccess(proposal);
    }
    current_ = proposal;
  }
  return Status::OK();
}

Status RandomWalk::Advance(const Graph& graph, const WeightFn& weight,
                           Rng& rng, MessageMeter* meter, NodeId fallback,
                           size_t steps, WalkTelemetry* telemetry,
                           diag::WalkDiagBuffer* diag,
                           const QuarantineView* quarantine,
                           WalkHealthBuffer* health) {
  for (size_t i = 0; i < steps; ++i) {
    DIGEST_RETURN_IF_ERROR(Step(graph, weight, rng, meter, fallback,
                                /*faults=*/nullptr, /*retry=*/nullptr,
                                telemetry, diag, quarantine, health));
    if (diag != nullptr) diag->RecordVisit(current_);
  }
  return Status::OK();
}

}  // namespace digest
