#ifndef DIGEST_SAMPLING_WEIGHT_H_
#define DIGEST_SAMPLING_WEIGHT_H_

#include <functional>

#include "db/p2p_database.h"
#include "net/graph.h"

namespace digest {

/// Generic node weight function w (paper §III): maps a node to a
/// non-negative, not necessarily normalized weight computed from the
/// node's *local* properties. The sampling operator draws node v with
/// probability w_v / Σ_u w_u.
using WeightFn = std::function<double(NodeId)>;

/// w₁: every node weighs 1 (uniform node sampling).
inline WeightFn UniformWeight() {
  return [](NodeId) { return 1.0; };
}

/// w₂: each node weighted by its content size m_v — the weight function
/// Digest uses for two-stage uniform tuple sampling (§III). The database
/// reference must outlive the returned function.
inline WeightFn ContentSizeWeight(const P2PDatabase& db) {
  return [&db](NodeId node) { return static_cast<double>(db.ContentSize(node)); };
}

/// Node weighted by its overlay degree (an example of a nonuniform
/// topological weight; exercised in tests and the sampling survey
/// example). The graph reference must outlive the returned function.
inline WeightFn DegreeWeight(const Graph& graph) {
  return [&graph](NodeId node) { return static_cast<double>(graph.Degree(node)); };
}

}  // namespace digest

#endif  // DIGEST_SAMPLING_WEIGHT_H_
