#include "exec/worker_pool.h"

#include <algorithm>
#include <utility>

namespace digest {
namespace exec {

WorkerPool::WorkerPool(size_t num_threads)
    : num_threads_(std::max<size_t>(num_threads, 1)) {
  threads_.reserve(num_threads_ - 1);
  for (size_t w = 1; w < num_threads_; ++w) {
    threads_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  batch_ready_.notify_all();
  for (auto& t : threads_) t.join();
}

void WorkerPool::WorkerLoop(size_t worker) {
  uint64_t seen_generation = 0;
  while (true) {
    Batch* batch = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      batch_ready_.wait(lock, [&] {
        return stopping_ || (batch_ != nullptr && generation_ != seen_generation);
      });
      if (stopping_) return;
      seen_generation = generation_;
      batch = batch_;
    }
    RunBatchShare(*batch, worker);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--batch->workers_remaining == 0) batch_done_.notify_one();
    }
  }
}

void WorkerPool::RunBatchShare(Batch& batch, size_t worker) {
  std::vector<Batch::Failure> local_failures;
  // Own shard first, then steal cyclically. fetch_add may overshoot a
  // shard's end by up to one claim per worker — harmless, the bounds
  // check rejects the overshoot and the cursor never feeds an item twice.
  for (size_t offset = 0; offset < num_threads_; ++offset) {
    const size_t shard = (worker + offset) % num_threads_;
    const size_t begin = shard * batch.shard_size;
    const size_t end = std::min(batch.n, begin + batch.shard_size);
    while (true) {
      const size_t item =
          begin + batch.cursors[shard].fetch_add(1, std::memory_order_relaxed);
      if (item >= end) break;
      try {
        Status s = (*batch.fn)(item, worker);
        if (!s.ok()) {
          local_failures.push_back({item, std::move(s), nullptr});
        }
      } catch (...) {
        local_failures.push_back(
            {item, Status::OK(), std::current_exception()});
      }
    }
  }
  if (!local_failures.empty()) {
    std::lock_guard<std::mutex> lock(mu_);
    batch.failures.insert(batch.failures.end(),
                          std::make_move_iterator(local_failures.begin()),
                          std::make_move_iterator(local_failures.end()));
  }
}

Status WorkerPool::ParallelFor(size_t n, const ItemFn& fn) {
  if (n == 0) return Status::OK();

  Batch batch;
  batch.n = n;
  batch.shard_size = (n + num_threads_ - 1) / num_threads_;
  batch.fn = &fn;
  batch.cursors = std::make_unique<std::atomic<size_t>[]>(num_threads_);
  for (size_t s = 0; s < num_threads_; ++s) {
    batch.cursors[s].store(0, std::memory_order_relaxed);
  }
  batch.workers_remaining = threads_.size();

  if (!threads_.empty()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      batch_ = &batch;
      ++generation_;
    }
    batch_ready_.notify_all();
  }

  // The calling thread is worker 0; with no spawned threads this IS the
  // whole batch, run inline in index order.
  RunBatchShare(batch, 0);

  if (!threads_.empty()) {
    std::unique_lock<std::mutex> lock(mu_);
    batch_done_.wait(lock, [&] { return batch.workers_remaining == 0; });
    batch_ = nullptr;
  }

  if (batch.failures.empty()) return Status::OK();
  // Deterministic failure selection: the lowest item index — what a
  // serial loop would have reported first — regardless of schedule.
  const auto first = std::min_element(
      batch.failures.begin(), batch.failures.end(),
      [](const Batch::Failure& a, const Batch::Failure& b) {
        return a.item < b.item;
      });
  if (first->exception) std::rethrow_exception(first->exception);
  return first->status;
}

}  // namespace exec
}  // namespace digest
