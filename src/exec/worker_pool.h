#ifndef DIGEST_EXEC_WORKER_POOL_H_
#define DIGEST_EXEC_WORKER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace digest {
namespace exec {

/// A small persistent worker pool for deterministic fan-out over an
/// indexed item range (the execution substrate of the parallel sampling
/// tier; see DESIGN.md "Parallel execution & determinism model").
///
/// Design constraints, in order:
///
///   1. *Schedule independence.* ParallelFor(n, fn) runs fn exactly once
///      for every item in [0, n), and every observable outcome is keyed
///      by item index, never by worker or arrival order. Which worker
///      runs which item is a performance detail.
///   2. *No early abort.* A failing item does not stop the others: all n
///      items always run, so side effects (per-item output slots) are
///      identical whether or not some items fail, on any schedule. The
///      reported failure is the one with the LOWEST item index — the
///      same failure a serial loop would hit first.
///   3. *Exception safety.* An exception escaping fn is captured and
///      rethrown on the calling thread, again lowest-index-first, after
///      the batch barrier.
///
/// The pool spawns `num_threads - 1` persistent workers; the calling
/// thread itself acts as worker 0 during ParallelFor, so a pool built
/// with num_threads <= 1 spawns nothing and runs items inline — the
/// serial reference schedule that the determinism tests compare against.
///
/// Work distribution is a sharded queue with stealing: the item range is
/// cut into one contiguous shard per worker, each with an atomic claim
/// cursor; a worker drains its own shard first, then steals from the
/// others in cyclic order. Claims use relaxed atomics (only uniqueness
/// matters); the end-of-batch barrier (mutex + condition variable)
/// publishes every item's writes to the caller.
///
/// ParallelFor is not reentrant and the pool is not itself thread-safe:
/// one batch at a time, driven from one thread (the engine's tick loop).
class WorkerPool {
 public:
  /// Item callback: (item index, worker index in [0, num_threads)).
  using ItemFn = std::function<Status(size_t item, size_t worker)>;

  /// Creates the pool; spawns max(num_threads, 1) - 1 worker threads.
  explicit WorkerPool(size_t num_threads);

  /// Joins all workers. Must not race a ParallelFor in flight.
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Total workers, including the calling thread (>= 1).
  size_t num_threads() const { return num_threads_; }

  /// Runs fn(i, worker) exactly once for every i in [0, n), blocking
  /// until all items finish. Always runs all items (see class comment);
  /// returns the failure with the lowest item index, or OK. Exceptions
  /// from fn are rethrown here, lowest item index first.
  Status ParallelFor(size_t n, const ItemFn& fn);

 private:
  /// One in-flight batch: the shared claim state and failure collection.
  struct Batch {
    size_t n = 0;
    size_t shard_size = 0;  // ceil(n / num_threads)
    const ItemFn* fn = nullptr;
    std::unique_ptr<std::atomic<size_t>[]> cursors;  // one per shard

    /// Per-item failures, merged under mu_ as workers finish.
    struct Failure {
      size_t item;
      Status status;
      std::exception_ptr exception;
    };
    std::vector<Failure> failures;

    size_t workers_remaining = 0;  // spawned workers still running
  };

  void WorkerLoop(size_t worker);

  /// Drains shards for `worker`, collecting failures locally; merges
  /// them into batch.failures under mu_ at the end.
  void RunBatchShare(Batch& batch, size_t worker);

  const size_t num_threads_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable batch_ready_;
  std::condition_variable batch_done_;
  Batch* batch_ = nullptr;      // non-null while a batch is in flight
  uint64_t generation_ = 0;     // bumped per batch, guards spurious wakes
  bool stopping_ = false;
};

}  // namespace exec
}  // namespace digest

#endif  // DIGEST_EXEC_WORKER_POOL_H_
