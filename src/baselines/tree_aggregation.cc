#include "baselines/tree_aggregation.h"

#include <deque>

namespace digest {

TreeAggregator::TreeAggregator(const Graph* graph, const P2PDatabase* db,
                               AggregateQuery query, NodeId root,
                               MessageMeter* meter,
                               TreeAggregationOptions options)
    : graph_(graph),
      db_(db),
      query_(std::move(query)),
      root_(root),
      meter_(meter),
      options_(options) {
  if (options_.rebuild_period == 0) options_.rebuild_period = 1;
}

Status TreeAggregator::RebuildTree() {
  if (!graph_->HasNode(root_)) {
    return Status::InvalidArgument("tree root is not live");
  }
  parent_.assign(graph_->NextId(), kInvalidNode);
  std::vector<bool> visited(graph_->NextId(), false);
  std::deque<NodeId> queue;
  visited[root_] = true;
  queue.push_back(root_);
  size_t flood_messages = 0;
  size_t tree_nodes = 0;
  while (!queue.empty()) {
    const NodeId cur = queue.front();
    queue.pop_front();
    ++tree_nodes;
    for (NodeId nb : graph_->Neighbors(cur)) {
      ++flood_messages;  // Every edge carries the flood announcement.
      if (!visited[nb]) {
        visited[nb] = true;
        parent_[nb] = cur;
        queue.push_back(nb);
      }
    }
  }
  if (meter_ != nullptr) {
    // Flood + one join ack from every non-root tree node to its parent.
    meter_->AddPush(flood_messages + (tree_nodes - 1));
  }
  has_tree_ = true;
  tree_age_ = 0;
  return Status::OK();
}

Result<TreeAggregationResult> TreeAggregator::Tick() {
  TreeAggregationResult out;
  if (!has_tree_ || tree_age_ >= options_.rebuild_period) {
    DIGEST_RETURN_IF_ERROR(RebuildTree());
    out.rebuilt = true;
  }
  ++tree_age_;

  Expression expr = query_.expression;
  DIGEST_RETURN_IF_ERROR(expr.Bind(db_->schema()));
  Predicate where = query_.where;
  DIGEST_RETURN_IF_ERROR(where.Bind(db_->schema()));

  // A node contributes iff its whole path to the root is still live
  // (an orphaned subtree has nowhere to send its partial; TAG's churn
  // fragility). Memoized reachability walk over parent pointers.
  std::vector<int8_t> reachable(graph_->NextId(), -1);  // -1 unknown.
  reachable[root_] = graph_->HasNode(root_) ? 1 : 0;
  auto is_reachable = [&](NodeId node) {
    std::vector<NodeId> chain;
    NodeId cur = node;
    while (cur < reachable.size() && reachable[cur] < 0) {
      if (!graph_->HasNode(cur)) {
        reachable[cur] = 0;
        break;
      }
      // A node that joined after the tree was built has no parent edge.
      const NodeId up = cur < parent_.size() ? parent_[cur] : kInvalidNode;
      if (up == kInvalidNode) {
        reachable[cur] = cur == root_ ? 1 : 0;
        break;
      }
      // The parent link itself must still exist.
      if (!graph_->HasEdge(cur, up)) {
        reachable[cur] = 0;
        break;
      }
      chain.push_back(cur);
      cur = up;
    }
    const int8_t value =
        cur < reachable.size() && reachable[cur] > 0 ? 1 : 0;
    for (NodeId c : chain) reachable[c] = value;
    return value > 0;
  };

  double sum = 0.0;
  size_t count = 0;
  size_t contributing_nodes = 0;
  Status failure = Status::OK();
  for (NodeId node : db_->Nodes()) {
    const size_t content = db_->ContentSize(node);
    if (!graph_->HasNode(node)) {
      out.lost_tuples += content;
      continue;
    }
    if (!is_reachable(node)) {
      out.lost_tuples += content;
      continue;
    }
    ++contributing_nodes;
    Result<const LocalStore*> store = db_->StoreAt(node);
    if (!store.ok()) continue;
    (*store)->ForEach([&](LocalTupleId, const Tuple& tuple) {
      if (!failure.ok()) return;
      Result<bool> qualifies = where.Evaluate(tuple);
      if (!qualifies.ok()) {
        failure = qualifies.status();
        return;
      }
      if (!*qualifies) return;
      Result<double> y = expr.Evaluate(tuple);
      if (!y.ok()) {
        failure = y.status();
        return;
      }
      sum += *y;
      ++count;
    });
    if (!failure.ok()) return failure;
  }
  // Aggregation pass: one partial-aggregate message up every live tree
  // edge (per contributing non-root node).
  if (meter_ != nullptr && contributing_nodes > 0) {
    meter_->AddPush(contributing_nodes - 1);
  }
  out.covered_tuples = count;
  switch (query_.op) {
    case AggregateOp::kSum:
      out.value = sum;
      break;
    case AggregateOp::kCount:
      out.value = static_cast<double>(count);
      break;
    case AggregateOp::kAvg:
      if (count == 0) {
        return Status::FailedPrecondition(
            "no reachable qualifying tuples for AVG");
      }
      out.value = sum / static_cast<double>(count);
      break;
    case AggregateOp::kMedian:
      // Partial aggregates merged up a tree cannot carry exact
      // quantiles with bounded state.
      return Status::InvalidArgument(
          "tree aggregation supports decomposable aggregates only");
  }
  return out;
}

}  // namespace digest
