#include "baselines/push_all.h"

namespace digest {

Result<double> PushAllBaseline::Tick() {
  ++ticks_;
  if (meter_ != nullptr) {
    DIGEST_ASSIGN_OR_RETURN(std::vector<int> dist,
                            graph_->BfsDistances(querying_node_));
    uint64_t messages = 0;
    for (NodeId node : db_->Nodes()) {
      if (!graph_->HasNode(node)) continue;
      const int hops = node < dist.size() ? dist[node] : -1;
      if (hops <= 0) continue;  // The querying node's own tuples are free.
      messages += static_cast<uint64_t>(hops) * db_->ContentSize(node);
    }
    meter_->AddPush(messages);
  }
  return db_->ExactAggregate(query_);
}

}  // namespace digest
