#ifndef DIGEST_BASELINES_TREE_AGGREGATION_H_
#define DIGEST_BASELINES_TREE_AGGREGATION_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "db/p2p_database.h"
#include "net/graph.h"
#include "net/message_meter.h"

namespace digest {

/// Tuning of the tree-based aggregation baseline.
struct TreeAggregationOptions {
  /// Ticks between spanning-tree rebuilds. 1 rebuilds every tick
  /// (expensive but accurate); larger values expose the protocol to the
  /// churn fragility §VII describes for TAG: a node whose tree path
  /// broke silently drops its whole subtree from the aggregate.
  size_t rebuild_period = 16;
};

/// Result of one tree-aggregation tick.
struct TreeAggregationResult {
  double value = 0.0;       ///< Aggregate over *reachable* tuples.
  size_t covered_tuples = 0;///< Tuples that actually contributed.
  size_t lost_tuples = 0;   ///< Tuples dropped by broken tree paths.
  bool rebuilt = false;     ///< True if the tree was rebuilt this tick.
};

/// TAG-style spanning-tree in-network aggregation (§VII): a BFS tree
/// rooted at the querying node is built by flooding, and each tick every
/// node sends one partial aggregate (sum, count) to its parent; partials
/// merge on the way up, so the aggregation pass costs one message per
/// tree edge. Exact while the tree matches the network — but between
/// rebuilds, churn orphans subtrees whose contributions silently vanish,
/// the miscalculation mode the paper calls out for dynamic P2P overlays.
class TreeAggregator {
 public:
  TreeAggregator(const Graph* graph, const P2PDatabase* db,
                 AggregateQuery query, NodeId root, MessageMeter* meter,
                 TreeAggregationOptions options = {});

  /// Executes one aggregation tick (rebuilding the tree if due).
  Result<TreeAggregationResult> Tick();

  /// Forces a tree rebuild on the next tick.
  void InvalidateTree() { tree_age_ = options_.rebuild_period; }

 private:
  /// Floods from the root to (re)build parent pointers. Cost: one
  /// message per edge (the flood) plus one per node (parent acks).
  Status RebuildTree();

  const Graph* graph_;
  const P2PDatabase* db_;
  AggregateQuery query_;
  NodeId root_;
  MessageMeter* meter_;
  TreeAggregationOptions options_;

  std::vector<NodeId> parent_;  // kInvalidNode = not in tree / root.
  bool has_tree_ = false;
  size_t tree_age_ = 0;
};

}  // namespace digest

#endif  // DIGEST_BASELINES_TREE_AGGREGATION_H_
