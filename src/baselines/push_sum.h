#ifndef DIGEST_BASELINES_PUSH_SUM_H_
#define DIGEST_BASELINES_PUSH_SUM_H_

#include <cstdint>

#include "common/result.h"
#include "db/p2p_database.h"
#include "net/graph.h"
#include "net/message_meter.h"
#include "numeric/rng.h"

namespace digest {

/// Tuning of the gossip aggregation protocol.
struct PushSumOptions {
  size_t max_rounds = 512;      ///< Hard cap on gossip rounds.
  double tolerance = 1e-4;      ///< Relative-change convergence threshold.
  size_t stable_rounds = 5;     ///< Rounds the estimate must stay within
                                ///< tolerance before stopping.
};

/// Result of one gossip aggregation run.
struct PushSumResult {
  double value = 0.0;     ///< Aggregate estimate at the querying node.
  size_t rounds = 0;      ///< Gossip rounds executed.
  bool converged = false; ///< False if max_rounds was hit first.
};

/// Push-sum gossip aggregation (Kempe et al.), one of the randomized
/// in-network techniques §VII discusses: every node repeatedly halves
/// its (sum, count, weight) triple and ships half to a uniformly random
/// neighbor; s/w, c/w converge to the network totals at every node.
///
/// The paper's critique, which this implementation lets benches verify:
/// every round costs one message *per node*, so the total cost is
/// O(N·rounds) per snapshot — justified only when all nodes want the
/// answer, not for a single querying node.
///
/// Weight placement: w = 1 at the querying node only, so at convergence
/// SUM = s/w, COUNT = c/w, and AVG = s/c. The network is assumed static
/// during a run (the paper's snapshot assumption).
class PushSumAggregator {
 public:
  PushSumAggregator(const Graph* graph, const P2PDatabase* db,
                    AggregateQuery query, NodeId querying_node,
                    MessageMeter* meter, Rng rng,
                    PushSumOptions options = {});

  /// Executes one full gossip aggregation over the current database
  /// state. Fails if the graph is empty or the expression fails.
  Result<PushSumResult> Run();

 private:
  const Graph* graph_;
  const P2PDatabase* db_;
  AggregateQuery query_;
  NodeId querying_node_;
  MessageMeter* meter_;
  Rng rng_;
  PushSumOptions options_;
};

}  // namespace digest

#endif  // DIGEST_BASELINES_PUSH_SUM_H_
