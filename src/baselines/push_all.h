#ifndef DIGEST_BASELINES_PUSH_ALL_H_
#define DIGEST_BASELINES_PUSH_ALL_H_

#include <cstdint>

#include "common/result.h"
#include "db/p2p_database.h"
#include "net/graph.h"
#include "net/message_meter.h"

namespace digest {

/// The ALL+ALL baseline of §VI-B3: at every snapshot (every tick) every
/// node pushes all of its tuples to the querying node, which evaluates
/// the query exactly. Only exact queries are supported; the point of the
/// baseline is its communication cost — each pushed tuple pays one
/// message per overlay hop on its way to the querying node.
class PushAllBaseline {
 public:
  /// `meter` may be null (no accounting).
  PushAllBaseline(const Graph* graph, const P2PDatabase* db,
                  AggregateQuery query, NodeId querying_node,
                  MessageMeter* meter)
      : graph_(graph),
        db_(db),
        query_(std::move(query)),
        querying_node_(querying_node),
        meter_(meter) {}

  /// Executes one tick: charges the push traffic and returns the exact
  /// aggregate value at the querying node.
  Result<double> Tick();

  /// Number of ticks executed.
  size_t ticks() const { return ticks_; }

 private:
  const Graph* graph_;
  const P2PDatabase* db_;
  AggregateQuery query_;
  NodeId querying_node_;
  MessageMeter* meter_;
  size_t ticks_ = 0;
};

}  // namespace digest

#endif  // DIGEST_BASELINES_PUSH_ALL_H_
