#ifndef DIGEST_BASELINES_OLSTON_FILTER_H_
#define DIGEST_BASELINES_OLSTON_FILTER_H_

#include <cstdint>
#include <map>
#include <utility>

#include "common/result.h"
#include "db/p2p_database.h"
#include "net/graph.h"
#include "net/message_meter.h"

namespace digest {

/// Tuning of the adaptive-filter baseline.
struct OlstonFilterOptions {
  /// Adjustment period (ticks) for the adaptive width reallocation.
  size_t adjustment_period = 8;
  /// Fraction of every filter's width reclaimed at each adjustment and
  /// redistributed to the sources that pushed the most (Olston's
  /// shrink/grow scheme).
  double shrink_fraction = 0.1;
};

/// The ALL+FILTER baseline of §VI-B3, after Olston et al.: every data
/// source (tuple) holds a bound-width filter centered at its last
/// reported value; an update is pushed to the querying node only when
/// the value escapes its filter. Filter widths are adapted periodically:
/// all shrink by a fixed fraction and the reclaimed width budget is
/// re-granted proportionally to recent push counts. The total width
/// budget is Σw_i = 2·ε·N, which for an AVG query bounds the
/// coordinator's error by ε.
///
/// Supports AVG queries (the paper's experimental query). The evaluation
/// is push-based: each pushed update costs one message per overlay hop
/// toward the querying node; width re-grants cost one message per
/// adjusted source.
class OlstonFilterBaseline {
 public:
  /// `epsilon` is the precision-interval half-width (set so that
  /// H − L < 2ε to match Digest's contract, per §VI-B3). `meter` may be
  /// null.
  OlstonFilterBaseline(const Graph* graph, const P2PDatabase* db,
                       AggregateQuery query, NodeId querying_node,
                       double epsilon, MessageMeter* meter,
                       OlstonFilterOptions options = {});

  /// Executes one tick of the push protocol and returns the
  /// coordinator's current AVG estimate.
  Result<double> Tick();

  /// Total updates pushed so far (before hop multiplication).
  uint64_t pushed_updates() const { return pushed_updates_; }

 private:
  struct SourceState {
    double reported = 0.0;  ///< Last value pushed to the coordinator.
    double width = 0.0;     ///< Current filter width w_i.
    uint64_t recent_pushes = 0;
  };

  Status EnsureInitialized();

  const Graph* graph_;
  const P2PDatabase* db_;
  AggregateQuery query_;
  NodeId querying_node_;
  double epsilon_;
  MessageMeter* meter_;
  OlstonFilterOptions options_;
  Expression bound_expression_;
  bool initialized_ = false;

  std::map<std::pair<NodeId, LocalTupleId>, SourceState> sources_;
  size_t ticks_ = 0;
  uint64_t pushed_updates_ = 0;
};

}  // namespace digest

#endif  // DIGEST_BASELINES_OLSTON_FILTER_H_
