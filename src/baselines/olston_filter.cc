#include "baselines/olston_filter.h"

#include <cmath>
#include <vector>

namespace digest {

OlstonFilterBaseline::OlstonFilterBaseline(
    const Graph* graph, const P2PDatabase* db, AggregateQuery query,
    NodeId querying_node, double epsilon, MessageMeter* meter,
    OlstonFilterOptions options)
    : graph_(graph),
      db_(db),
      query_(std::move(query)),
      querying_node_(querying_node),
      epsilon_(epsilon),
      meter_(meter),
      options_(options),
      bound_expression_(query_.expression) {}

Status OlstonFilterBaseline::EnsureInitialized() {
  if (initialized_) return Status::OK();
  if (query_.op != AggregateOp::kAvg) {
    return Status::InvalidArgument(
        "the filter baseline supports AVG queries");
  }
  if (!(epsilon_ > 0.0)) {
    return Status::InvalidArgument("epsilon must be > 0");
  }
  DIGEST_RETURN_IF_ERROR(bound_expression_.Bind(db_->schema()));
  initialized_ = true;
  return Status::OK();
}

Result<double> OlstonFilterBaseline::Tick() {
  DIGEST_RETURN_IF_ERROR(EnsureInitialized());
  ++ticks_;

  DIGEST_ASSIGN_OR_RETURN(std::vector<int> dist,
                          graph_->BfsDistances(querying_node_));
  auto hops_of = [&dist](NodeId node) -> uint64_t {
    if (node >= dist.size() || dist[node] < 0) return 1;
    return static_cast<uint64_t>(std::max(dist[node], 0));
  };

  // Pass 1: every live source checks its filter; escapes push an update.
  std::map<std::pair<NodeId, LocalTupleId>, SourceState> next;
  Status failure = Status::OK();
  const double total_budget =
      2.0 * epsilon_ * static_cast<double>(std::max<size_t>(
                           1, db_->TotalTuples()));
  const double default_width =
      total_budget / static_cast<double>(std::max<size_t>(
                         1, db_->TotalTuples()));
  for (NodeId node : db_->Nodes()) {
    Result<const LocalStore*> store = db_->StoreAt(node);
    if (!store.ok()) continue;
    (*store)->ForEach([&](LocalTupleId id, const Tuple& tuple) {
      if (!failure.ok()) return;
      Result<double> value = bound_expression_.Evaluate(tuple);
      if (!value.ok()) {
        failure = value.status();
        return;
      }
      const auto key = std::make_pair(node, id);
      auto it = sources_.find(key);
      if (it == sources_.end()) {
        // New source (insertion or joined node): announces itself.
        SourceState state;
        state.reported = *value;
        state.width = default_width;
        state.recent_pushes = 0;
        if (meter_ != nullptr) meter_->AddPush(hops_of(node));
        ++pushed_updates_;
        next.emplace(key, state);
        return;
      }
      SourceState state = it->second;
      const double lo = state.reported - state.width / 2.0;
      const double hi = state.reported + state.width / 2.0;
      if (*value < lo || *value > hi) {
        state.reported = *value;
        ++state.recent_pushes;
        if (meter_ != nullptr) meter_->AddPush(hops_of(node));
        ++pushed_updates_;
      }
      next.emplace(key, state);
    });
    if (!failure.ok()) return failure;
  }
  // Departed sources simply disappear from the coordinator's view (the
  // coordinator notices via its periodic re-grants, charged below).
  sources_ = std::move(next);

  // Pass 2: periodic adaptive reallocation (shrink all, re-grant the
  // reclaimed budget proportionally to recent push counts).
  if (options_.adjustment_period > 0 &&
      ticks_ % options_.adjustment_period == 0 && !sources_.empty()) {
    double reclaimed = 0.0;
    uint64_t total_pushes = 0;
    for (auto& [key, state] : sources_) {
      (void)key;
      const double cut = state.width * options_.shrink_fraction;
      state.width -= cut;
      reclaimed += cut;
      total_pushes += state.recent_pushes;
    }
    for (auto& [key, state] : sources_) {
      double grant;
      if (total_pushes > 0) {
        grant = reclaimed * static_cast<double>(state.recent_pushes) /
                static_cast<double>(total_pushes);
      } else {
        grant = reclaimed / static_cast<double>(sources_.size());
      }
      if (grant > 0.0) {
        state.width += grant;
        // The coordinator sends the new width to the source.
        if (meter_ != nullptr) meter_->AddPush(hops_of(key.first));
      }
      state.recent_pushes = 0;
    }
  }

  // Coordinator estimate: mean of last-reported values.
  if (sources_.empty()) {
    return Status::FailedPrecondition("no sources registered");
  }
  double sum = 0.0;
  for (const auto& [key, state] : sources_) {
    (void)key;
    sum += state.reported;
  }
  return sum / static_cast<double>(sources_.size());
}

}  // namespace digest
