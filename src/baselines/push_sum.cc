#include "baselines/push_sum.h"

#include <cmath>
#include <vector>

namespace digest {
namespace {

struct Mass {
  double sum = 0.0;     // Σ expression values held.
  double count = 0.0;   // Σ tuple counts held.
  double weight = 0.0;  // Σ weight held (1 total, seeded at the querier).

  void Add(const Mass& other) {
    sum += other.sum;
    count += other.count;
    weight += other.weight;
  }
  Mass Half() {
    Mass h{sum / 2.0, count / 2.0, weight / 2.0};
    sum = h.sum;
    count = h.count;
    weight = h.weight;
    return h;
  }
};

}  // namespace

PushSumAggregator::PushSumAggregator(const Graph* graph,
                                     const P2PDatabase* db,
                                     AggregateQuery query,
                                     NodeId querying_node,
                                     MessageMeter* meter, Rng rng,
                                     PushSumOptions options)
    : graph_(graph),
      db_(db),
      query_(std::move(query)),
      querying_node_(querying_node),
      meter_(meter),
      rng_(rng),
      options_(options) {}

Result<PushSumResult> PushSumAggregator::Run() {
  if (query_.op == AggregateOp::kMedian) {
    return Status::InvalidArgument(
        "push-sum diffuses additive masses; it cannot compute quantiles");
  }
  const std::vector<NodeId> nodes = graph_->LiveNodes();
  if (nodes.empty()) {
    return Status::FailedPrecondition("cannot gossip on an empty network");
  }
  if (!graph_->HasNode(querying_node_)) {
    return Status::InvalidArgument("querying node is not live");
  }
  Expression expr = query_.expression;
  DIGEST_RETURN_IF_ERROR(expr.Bind(db_->schema()));
  Predicate where = query_.where;
  DIGEST_RETURN_IF_ERROR(where.Bind(db_->schema()));

  // Initial masses: each node's local partial aggregate; the unit weight
  // lives at the querying node.
  std::vector<Mass> mass(graph_->NextId());
  Status failure = Status::OK();
  for (NodeId node : nodes) {
    Result<const LocalStore*> store = db_->StoreAt(node);
    if (!store.ok()) continue;  // Node without content contributes zero.
    (*store)->ForEach([&](LocalTupleId, const Tuple& tuple) {
      if (!failure.ok()) return;
      Result<bool> qualifies = where.Evaluate(tuple);
      if (!qualifies.ok()) {
        failure = qualifies.status();
        return;
      }
      if (!*qualifies) return;
      Result<double> y = expr.Evaluate(tuple);
      if (!y.ok()) {
        failure = y.status();
        return;
      }
      mass[node].sum += *y;
      mass[node].count += 1.0;
    });
    if (!failure.ok()) return failure;
  }
  mass[querying_node_].weight = 1.0;

  auto estimate_at = [&](NodeId node) -> double {
    const Mass& m = mass[node];
    if (m.weight <= 0.0) return 0.0;
    switch (query_.op) {
      case AggregateOp::kSum:
        return m.sum / m.weight;
      case AggregateOp::kCount:
        return m.count / m.weight;
      case AggregateOp::kAvg:
        return m.count > 0.0 ? m.sum / m.count : 0.0;
      case AggregateOp::kMedian:
        break;  // Rejected in Run().
    }
    return 0.0;
  };

  PushSumResult out;
  double last_estimate = estimate_at(querying_node_);
  size_t stable = 0;
  std::vector<Mass> inbox(graph_->NextId());
  for (size_t round = 0; round < options_.max_rounds; ++round) {
    out.rounds = round + 1;
    // Synchronous round: every node halves its mass and pushes one half
    // to a uniformly random neighbor (one message per node per round).
    for (auto& m : inbox) m = Mass{};
    for (NodeId node : nodes) {
      Mass half = mass[node].Half();
      Result<NodeId> target = graph_->RandomNeighbor(node, rng_);
      if (!target.ok()) {
        // Isolated node keeps everything.
        mass[node].Add(half);
        continue;
      }
      inbox[*target].Add(half);
      if (meter_ != nullptr) meter_->AddPush(1);
    }
    for (NodeId node : nodes) {
      mass[node].Add(inbox[node]);
    }
    const double estimate = estimate_at(querying_node_);
    const double scale = std::max(std::fabs(estimate), 1e-12);
    if (std::fabs(estimate - last_estimate) / scale < options_.tolerance) {
      if (++stable >= options_.stable_rounds) {
        out.value = estimate;
        out.converged = true;
        return out;
      }
    } else {
      stable = 0;
    }
    last_estimate = estimate;
  }
  out.value = last_estimate;
  out.converged = false;
  return out;
}

}  // namespace digest
