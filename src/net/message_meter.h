#ifndef DIGEST_NET_MESSAGE_METER_H_
#define DIGEST_NET_MESSAGE_METER_H_

#include <cstdint>

namespace digest {

/// Communication-cost accounting (the efficiency metric of §VI-B3).
///
/// Every component that sends simulated messages charges them here, by
/// category, so benches can report both totals and breakdowns. One meter
/// instance is shared per experiment run.
///
/// Under fault injection (net/fault_plan.h) three robustness categories
/// join the original five: retries (retransmissions after a lost
/// message), agent restarts (re-injecting a walk agent lost in
/// transit), and losses. Losses annotate sends that were already counted
/// in another category (the first transmission of a probe is charged as
/// a probe whether or not it arrives), so Total() deliberately excludes
/// them — including them would double-count bandwidth.
class MessageMeter {
 public:
  /// One hop of a random-walk sampling agent (node-to-node forward).
  void AddWalkHop(uint64_t n = 1) { walk_hops_ = SatAdd(walk_hops_, n); }

  /// One neighbor-weight probe (node i asking neighbor j for w_j when
  /// computing Metropolis forwarding probabilities).
  void AddWeightProbe(uint64_t n = 1) {
    weight_probes_ = SatAdd(weight_probes_, n);
  }

  /// Returning a sampled tuple from the sampled node to the query node.
  void AddSampleTransfer(uint64_t n = 1) {
    sample_transfers_ = SatAdd(sample_transfers_, n);
  }

  /// Re-evaluating a retained (repeated-sampling) sample at a known node.
  void AddRefresh(uint64_t n = 1) { refreshes_ = SatAdd(refreshes_, n); }

  /// Push-based baseline traffic (tuples/updates pushed toward the
  /// querying node), in per-hop messages.
  void AddPush(uint64_t n = 1) { pushes_ = SatAdd(pushes_, n); }

  /// Retransmission of a message whose previous attempt was lost.
  void AddRetry(uint64_t n = 1) { retries_ = SatAdd(retries_, n); }

  /// Re-injection of a walk agent lost in transit.
  void AddAgentRestart(uint64_t n = 1) {
    agent_restarts_ = SatAdd(agent_restarts_, n);
  }

  /// Annotates a transmission (already charged elsewhere) as lost.
  void AddLoss(uint64_t n = 1) { losses_ = SatAdd(losses_, n); }

  uint64_t walk_hops() const { return walk_hops_; }
  uint64_t weight_probes() const { return weight_probes_; }
  uint64_t sample_transfers() const { return sample_transfers_; }
  uint64_t refreshes() const { return refreshes_; }
  uint64_t pushes() const { return pushes_; }
  uint64_t retries() const { return retries_; }
  uint64_t agent_restarts() const { return agent_restarts_; }
  uint64_t losses() const { return losses_; }

  /// Grand total over all send categories (losses excluded — they
  /// annotate sends already counted). Saturates at UINT64_MAX instead of
  /// wrapping.
  uint64_t Total() const {
    uint64_t total = walk_hops_;
    total = SatAdd(total, weight_probes_);
    total = SatAdd(total, sample_transfers_);
    total = SatAdd(total, refreshes_);
    total = SatAdd(total, pushes_);
    total = SatAdd(total, retries_);
    total = SatAdd(total, agent_restarts_);
    return total;
  }

  /// Messages attributable to fault recovery (the robustness overhead a
  /// bench reports next to the base cost).
  uint64_t FaultOverhead() const { return SatAdd(retries_, agent_restarts_); }

  /// Resets all counters to zero.
  void Reset() { *this = MessageMeter(); }

 private:
  static uint64_t SatAdd(uint64_t a, uint64_t b) {
    uint64_t sum = 0;
    if (__builtin_add_overflow(a, b, &sum)) {
      return ~static_cast<uint64_t>(0);
    }
    return sum;
  }

  uint64_t walk_hops_ = 0;
  uint64_t weight_probes_ = 0;
  uint64_t sample_transfers_ = 0;
  uint64_t refreshes_ = 0;
  uint64_t pushes_ = 0;
  uint64_t retries_ = 0;
  uint64_t agent_restarts_ = 0;
  uint64_t losses_ = 0;
};

}  // namespace digest

#endif  // DIGEST_NET_MESSAGE_METER_H_
