#ifndef DIGEST_NET_MESSAGE_METER_H_
#define DIGEST_NET_MESSAGE_METER_H_

#include <cstddef>
#include <cstdint>

namespace digest {

/// Communication-cost accounting (the efficiency metric of §VI-B3).
///
/// Every component that sends simulated messages charges them here, by
/// category, so benches can report both totals and breakdowns. One meter
/// instance is shared per experiment run.
///
/// Counts live in a single category-indexed array and Total() sums that
/// array, so a new category can never silently drift out of the total
/// (the bug class bench/regress comparisons would otherwise inherit).
///
/// Under fault injection (net/fault_plan.h) robustness categories join
/// the original five: retries (retransmissions after a lost message),
/// agent restarts (re-injecting a walk agent lost in transit), hedge
/// launches (redundant straggler-mitigation walks), and hedged
/// duplicates (the losing walk's delivery, suppressed at the query
/// node). Losses annotate sends that were already counted in another
/// category (the first transmission of a probe is charged as a probe
/// whether or not it arrives), so Total() deliberately excludes them —
/// including them would double-count bandwidth.
class MessageMeter {
 public:
  /// Send categories. Every value below kCount is summed by Total().
  enum class Category : size_t {
    kWalkHop = 0,
    kWeightProbe,
    kSampleTransfer,
    kRefresh,
    kPush,
    kRetry,
    kAgentRestart,
    kHedgeLaunch,
    kHedgedDuplicate,
    kCount,
  };
  static constexpr size_t kNumCategories = static_cast<size_t>(Category::kCount);

  /// Charges `n` messages to `c`. Saturates at UINT64_MAX.
  void Add(Category c, uint64_t n = 1) {
    uint64_t& slot = counts_[static_cast<size_t>(c)];
    slot = SatAdd(slot, n);
  }

  /// Count currently charged to `c`.
  uint64_t Count(Category c) const { return counts_[static_cast<size_t>(c)]; }

  /// One hop of a random-walk sampling agent (node-to-node forward).
  void AddWalkHop(uint64_t n = 1) { Add(Category::kWalkHop, n); }

  /// One neighbor-weight probe (node i asking neighbor j for w_j when
  /// computing Metropolis forwarding probabilities).
  void AddWeightProbe(uint64_t n = 1) { Add(Category::kWeightProbe, n); }

  /// Returning a sampled tuple from the sampled node to the query node.
  void AddSampleTransfer(uint64_t n = 1) { Add(Category::kSampleTransfer, n); }

  /// Re-evaluating a retained (repeated-sampling) sample at a known node.
  void AddRefresh(uint64_t n = 1) { Add(Category::kRefresh, n); }

  /// Push-based baseline traffic (tuples/updates pushed toward the
  /// querying node), in per-hop messages.
  void AddPush(uint64_t n = 1) { Add(Category::kPush, n); }

  /// Retransmission of a message whose previous attempt was lost.
  void AddRetry(uint64_t n = 1) { Add(Category::kRetry, n); }

  /// Re-injection of a walk agent lost in transit.
  void AddAgentRestart(uint64_t n = 1) { Add(Category::kAgentRestart, n); }

  /// Injection of a redundant (hedged) walk agent racing a straggler.
  void AddHedgeLaunch(uint64_t n = 1) { Add(Category::kHedgeLaunch, n); }

  /// Delivery from the losing walk of a hedged pair, suppressed as a
  /// duplicate at the query node (bandwidth was still spent).
  void AddHedgedDuplicate(uint64_t n = 1) {
    Add(Category::kHedgedDuplicate, n);
  }

  /// Annotates a transmission (already charged elsewhere) as lost.
  void AddLoss(uint64_t n = 1) { losses_ = SatAdd(losses_, n); }

  uint64_t walk_hops() const { return Count(Category::kWalkHop); }
  uint64_t weight_probes() const { return Count(Category::kWeightProbe); }
  uint64_t sample_transfers() const { return Count(Category::kSampleTransfer); }
  uint64_t refreshes() const { return Count(Category::kRefresh); }
  uint64_t pushes() const { return Count(Category::kPush); }
  uint64_t retries() const { return Count(Category::kRetry); }
  uint64_t agent_restarts() const { return Count(Category::kAgentRestart); }
  uint64_t hedge_launches() const { return Count(Category::kHedgeLaunch); }
  uint64_t hedged_duplicates() const {
    return Count(Category::kHedgedDuplicate);
  }
  uint64_t losses() const { return losses_; }

  /// Grand total over all send categories (losses excluded — they
  /// annotate sends already counted). Saturates at UINT64_MAX instead of
  /// wrapping. Because this loops over the same array Add() writes, the
  /// per-category counts always sum to Total() (up to saturation).
  uint64_t Total() const {
    uint64_t total = 0;
    for (size_t i = 0; i < kNumCategories; ++i) {
      total = SatAdd(total, counts_[i]);
    }
    return total;
  }

  /// Messages attributable to fault recovery (the robustness overhead a
  /// bench reports next to the base cost).
  uint64_t FaultOverhead() const {
    uint64_t overhead = SatAdd(retries(), agent_restarts());
    overhead = SatAdd(overhead, hedge_launches());
    return SatAdd(overhead, hedged_duplicates());
  }

  /// Folds another meter's counts into this one (saturating per
  /// category, losses included). Saturating addition is commutative and
  /// associative — min(a+b, MAX) in any grouping — so merging per-walk
  /// meters in any order yields identical counts; the parallel executor
  /// still merges in walk-index order for uniformity with the other
  /// merge steps. Property-tested in message_meter_test.cc.
  void Merge(const MessageMeter& other) {
    for (size_t i = 0; i < kNumCategories; ++i) {
      counts_[i] = SatAdd(counts_[i], other.counts_[i]);
    }
    losses_ = SatAdd(losses_, other.losses_);
  }

  /// Resets all counters to zero.
  void Reset() { *this = MessageMeter(); }

  /// Overwrites one category's count (checkpoint restore only).
  void RestoreCount(Category c, uint64_t n) {
    counts_[static_cast<size_t>(c)] = n;
  }

  /// Overwrites the loss annotation count (checkpoint restore only).
  void RestoreLosses(uint64_t n) { losses_ = n; }

 private:
  static uint64_t SatAdd(uint64_t a, uint64_t b) {
    uint64_t sum = 0;
    if (__builtin_add_overflow(a, b, &sum)) {
      return ~static_cast<uint64_t>(0);
    }
    return sum;
  }

  uint64_t counts_[kNumCategories] = {};
  uint64_t losses_ = 0;
};

}  // namespace digest

#endif  // DIGEST_NET_MESSAGE_METER_H_
