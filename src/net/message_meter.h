#ifndef DIGEST_NET_MESSAGE_METER_H_
#define DIGEST_NET_MESSAGE_METER_H_

#include <cstdint>

namespace digest {

/// Communication-cost accounting (the efficiency metric of §VI-B3).
///
/// Every component that sends simulated messages charges them here, by
/// category, so benches can report both totals and breakdowns. One meter
/// instance is shared per experiment run.
class MessageMeter {
 public:
  /// One hop of a random-walk sampling agent (node-to-node forward).
  void AddWalkHop(uint64_t n = 1) { walk_hops_ += n; }

  /// One neighbor-weight probe (node i asking neighbor j for w_j when
  /// computing Metropolis forwarding probabilities).
  void AddWeightProbe(uint64_t n = 1) { weight_probes_ += n; }

  /// Returning a sampled tuple from the sampled node to the query node.
  void AddSampleTransfer(uint64_t n = 1) { sample_transfers_ += n; }

  /// Re-evaluating a retained (repeated-sampling) sample at a known node.
  void AddRefresh(uint64_t n = 1) { refreshes_ += n; }

  /// Push-based baseline traffic (tuples/updates pushed toward the
  /// querying node), in per-hop messages.
  void AddPush(uint64_t n = 1) { pushes_ += n; }

  uint64_t walk_hops() const { return walk_hops_; }
  uint64_t weight_probes() const { return weight_probes_; }
  uint64_t sample_transfers() const { return sample_transfers_; }
  uint64_t refreshes() const { return refreshes_; }
  uint64_t pushes() const { return pushes_; }

  /// Grand total over all categories.
  uint64_t Total() const {
    return walk_hops_ + weight_probes_ + sample_transfers_ + refreshes_ +
           pushes_;
  }

  /// Resets all counters to zero.
  void Reset() { *this = MessageMeter(); }

 private:
  uint64_t walk_hops_ = 0;
  uint64_t weight_probes_ = 0;
  uint64_t sample_transfers_ = 0;
  uint64_t refreshes_ = 0;
  uint64_t pushes_ = 0;
};

}  // namespace digest

#endif  // DIGEST_NET_MESSAGE_METER_H_
