#ifndef DIGEST_NET_CHURN_H_
#define DIGEST_NET_CHURN_H_

#include <vector>

#include "common/result.h"
#include "net/graph.h"
#include "numeric/rng.h"

namespace digest {

/// Configuration of the node join/leave process (paper §II: nodes
/// autonomously join and leave; the SETI@home network churns visibly,
/// the weather network is almost stable).
struct ChurnConfig {
  double join_rate = 0.0;   ///< Expected joins per tick.
  double leave_rate = 0.0;  ///< Expected leaves per tick.
  size_t attach_edges = 2;  ///< Edges a joining node establishes.
  /// Attach preferentially by degree (power-law growth) instead of
  /// uniformly.
  bool preferential_attachment = false;
  size_t min_nodes = 3;     ///< Leaves never shrink the graph below this.
  /// A node exempt from leaving (e.g., the querying node, which is by
  /// definition online while its continuous query runs).
  NodeId protected_node = kInvalidNode;
};

/// Nodes added and removed by one churn tick.
struct ChurnEvents {
  std::vector<NodeId> joined;
  std::vector<NodeId> left;
};

/// Drives membership dynamics of an overlay graph, one tick at a time.
///
/// Counts per tick are floor(rate) plus a Bernoulli on the fractional
/// part, so the long-run average matches the configured rate. After
/// removals the graph's connectivity is repaired (a leaving peer's
/// neighbors re-link), matching the standing assumption that the overlay
/// stays connected.
class ChurnProcess {
 public:
  explicit ChurnProcess(ChurnConfig config) : config_(config) {}

  const ChurnConfig& config() const { return config_; }

  /// Marks a node as exempt from leaving.
  void set_protected_node(NodeId node) { config_.protected_node = node; }

  /// Applies one tick of churn to `graph`. Fails only on internal
  /// invariant violations.
  Result<ChurnEvents> Tick(Graph& graph, Rng& rng);

 private:
  ChurnConfig config_;
};

}  // namespace digest

#endif  // DIGEST_NET_CHURN_H_
