#ifndef DIGEST_NET_FAULT_PLAN_H_
#define DIGEST_NET_FAULT_PLAN_H_

#include <cstdint>

#include "common/result.h"
#include "net/graph.h"
#include "numeric/rng.h"

namespace digest {
namespace obs {
class Tracer;
}  // namespace obs
namespace prof {
class Profiler;
}  // namespace prof

/// Rates and shapes of the injected faults. All probabilities are in
/// [0, 1]; a default-constructed config injects nothing.
struct FaultPlanConfig {
  /// Base probability that any single message transmission is lost.
  double message_loss = 0.0;

  /// Per-edge heterogeneity in [0, 1]: the loss rate of a concrete edge
  /// (a, b) is message_loss · (1 + edge_spread·u) with u drawn once per
  /// edge from [-1, 1] (deterministically from the plan seed), clamped
  /// into [0, 1]. 0 gives every edge the base rate.
  double edge_spread = 0.0;

  /// Probability that a walk agent is lost in transit on any single hop
  /// (the hosting message is delivered but the agent state is not
  /// recoverable; the originator re-injects it from the origin).
  double agent_drop = 0.0;

  /// Probability that a weight probe is answered from a stale cache
  /// instead of the neighbor's current state.
  double stale_probe = 0.0;

  /// Maximum relative distortion of a stale weight: a stale probe
  /// reports w·(1 + stale_noise·u) with u uniform in [-1, 1], floored
  /// at 0.
  double stale_noise = 0.5;

  /// Fraction of nodes that periodically stall (blackhole): a stalled
  /// node receives messages but never answers or forwards.
  double stall_fraction = 0.0;

  /// A stalling node blackholes for `stall_length` consecutive ticks out
  /// of every `stall_every` ticks, at a per-node deterministic phase.
  int64_t stall_every = 64;
  int64_t stall_length = 8;

  /// Correlated partition episodes: every `partition_every` ticks a new
  /// episode begins, and for its first `partition_length` ticks the
  /// overlay is split into `partition_components` components. Component
  /// membership is a pure hash of (seed, episode, node), so successive
  /// episodes cut the overlay along different seams; any message whose
  /// endpoints land in different components is lost deterministically
  /// (no draw — a partition is not a coin flip). 0 disables.
  int64_t partition_every = 0;
  int64_t partition_length = 0;
  uint64_t partition_components = 2;

  /// Flapping links: this fraction of edges goes dark for `flap_length`
  /// consecutive ticks out of every `flap_every`, at a per-edge
  /// deterministic phase — the link-level analogue of node stalls, and
  /// the failure mode that makes circuit breakers bounce.
  double flap_fraction = 0.0;
  int64_t flap_every = 32;
  int64_t flap_length = 4;

  /// Asymmetric per-direction loss in [0, 1]: direction (from, to) of an
  /// edge carries rate EdgeLossRate · (1 + loss_asymmetry · s) with
  /// s = ±1 chosen by a per-direction hash (one direction of each lossy
  /// edge is worse than the other). 0 keeps both directions exactly
  /// equal to EdgeLossRate.
  double loss_asymmetry = 0.0;

  /// Validates ranges (probabilities in [0,1], window lengths coherent).
  Status Validate() const;
};

/// Deterministic, seed-driven fault schedule for the simulated overlay
/// (the failure modes an unstructured P2P network actually exhibits:
/// message loss, stalled peers, stale state, lost walk agents — on top
/// of the whole-node churn modeled by net/churn.h).
///
/// All randomness is drawn from a private xoshiro stream seeded at
/// construction, so a run with a FaultPlan is exactly reproducible from
/// (config, seed) and — crucially — the plan never consumes randomness
/// from the simulation's own generators: attaching a plan with all rates
/// zero is bit-identical to running without one.
///
/// Static properties (per-edge loss rates, which nodes stall and when)
/// are pure hash functions of the seed, so they can be queried in any
/// order without perturbing the schedule.
class FaultPlan {
 public:
  explicit FaultPlan(FaultPlanConfig config, uint64_t seed);

  const FaultPlanConfig& config() const { return config_; }
  uint64_t seed() const { return seed_; }

  /// Scenario dials: rates may be changed mid-run (e.g. a loss burst);
  /// the draw stream itself stays deterministic. A value outside [0, 1]
  /// is rejected with InvalidArgument and leaves the rate unchanged —
  /// no silent clamping.
  Status set_message_loss(double p);
  Status set_agent_drop(double p);
  Status set_stale_probe(double p);
  Status set_stall_fraction(double p);

  /// Advances the plan's clock; stall, flap, and partition windows are
  /// evaluated against it. Emits PartitionBegin/PartitionEnd trace
  /// events when the clock crosses a partition-window boundary (pure
  /// observation: the fault schedule is unchanged by tracing).
  void set_now(int64_t t);
  int64_t now() const { return now_; }

  /// Attaches (or detaches, with nullptr) a structured event tracer:
  /// each injected message loss emits an obs::FaultLossEvent. Not owned;
  /// must outlive the plan. Observation only — the draw stream is
  /// untouched, so a traced run injects the identical fault schedule.
  void SetTracer(obs::Tracer* tracer) { tracer_ = tracer; }
  obs::Tracer* tracer() const { return tracer_; }

  /// Attaches (or detaches) a wall-clock profiler: the Bernoulli/noise
  /// draws (LoseMessage, DropAgent, StaleProbe, DistortWeight) fold
  /// their real cost into prof::Phase::kFaultDraw. Not owned; null
  /// disables with no clock reads. Same purity contract as the tracer:
  /// the draw stream and injection counters are untouched.
  void SetProfiler(prof::Profiler* profiler) { profiler_ = profiler; }
  prof::Profiler* profiler() const { return profiler_; }

  /// Draws whether one transmission over edge (from, to) is lost.
  /// Counts toward losses_injected() when true.
  bool LoseMessage(NodeId from, NodeId to);

  /// Deterministic loss rate of edge {a, b} (symmetric; no draw).
  double EdgeLossRate(NodeId a, NodeId b) const;

  /// Deterministic loss rate of the DIRECTION (from, to): EdgeLossRate
  /// skewed by loss_asymmetry (one direction of each lossy edge is
  /// worse). Exactly EdgeLossRate when loss_asymmetry is 0.
  double DirectionalLossRate(NodeId from, NodeId to) const;

  /// True iff a partition window is active at now(). Pure function of
  /// (config, now).
  bool PartitionActive() const;

  /// Partition episode index at now() (floor(now / partition_every)).
  uint64_t PartitionEpisode() const;

  /// Component `node` belongs to in the current episode's split — a
  /// pure hash of (seed, episode, node), meaningful whether or not the
  /// window is active (tests probe upcoming splits).
  uint64_t PartitionComponent(NodeId node) const;

  /// True iff a message (from, to) crosses component boundaries while a
  /// partition window is active — such messages are lost
  /// deterministically, independent of the draw stream.
  bool CrossPartition(NodeId from, NodeId to) const;

  /// True iff edge {a, b} is inside one of its flap windows at now().
  /// Pure function of (seed, a, b, now).
  bool LinkFlapped(NodeId a, NodeId b) const;

  /// Draws whether a hopping agent is lost in transit.
  bool DropAgent();

  /// Draws whether a weight probe is answered stale.
  bool StaleProbe();

  /// Distorts a stale weight by the configured relative noise (>= 0).
  double DistortWeight(double weight);

  /// True iff `node` is inside one of its blackhole windows at now().
  /// Pure function of (seed, node, now).
  bool IsBlackholed(NodeId node) const;

  /// Derives an independent draw substream of this plan, keyed by `key`,
  /// WITHOUT advancing this plan's stream. The substream shares the
  /// parent's config, seed, and clock — so the static fault topology
  /// (EdgeLossRate, IsBlackholed) is identical — but draws its Bernoulli
  /// stream from a seed hashed from (plan seed, key), with injection
  /// counters zeroed and no tracer/profiler attached. The parallel walk
  /// executor spawns one substream per walk, keyed by walk index, so the
  /// faults a walk sees depend only on (plan seed, batch, walk index) —
  /// never on scheduling. Fold a finished substream's counters back with
  /// AbsorbInjections().
  FaultPlan SpawnSubstream(uint64_t key) const;

  /// Adds a finished substream's injection counters onto this plan's
  /// (the merge step runs on the main thread after the pool barrier, so
  /// plain adds suffice).
  void AbsorbInjections(uint64_t losses, uint64_t drops, uint64_t stale) {
    losses_injected_ += losses;
    drops_injected_ += drops;
    stale_injected_ += stale;
  }

  /// Injection counters, for tests and benches that reconcile meter
  /// accounting against the schedule.
  uint64_t losses_injected() const { return losses_injected_; }
  uint64_t drops_injected() const { return drops_injected_; }
  uint64_t stale_injected() const { return stale_injected_; }

 private:
  FaultPlanConfig config_;
  uint64_t seed_;
  Rng rng_;
  obs::Tracer* tracer_ = nullptr;
  prof::Profiler* profiler_ = nullptr;
  int64_t now_ = 0;
  bool partition_window_active_ = false;
  uint64_t active_episode_ = 0;  ///< Valid while a window is active.
  uint64_t losses_injected_ = 0;
  uint64_t drops_injected_ = 0;
  uint64_t stale_injected_ = 0;
};

/// Retransmission/backoff policy for messages sent under a FaultPlan,
/// and the per-batch budget that bounds how long a sampling call may
/// keep retrying before it times out with a degraded status.
struct RetryPolicy {
  /// Total send attempts per message (1 = no retries).
  size_t max_attempts = 4;

  /// Budget units charged for the k-th retransmission:
  /// backoff_base · 2^(k−1) — the deterministic exponential-backoff
  /// delay, expressed in hop-budget units.
  size_t backoff_base = 1;

  /// A batch of walks planned to take S hops may spend at most
  /// ceil(hop_budget_factor · S) budget units (hops + backoff delays)
  /// before the sampling call gives up with kUnavailable.
  double hop_budget_factor = 8.0;

  /// Deterministic backoff cost of the k-th retransmission (k >= 1).
  /// Saturates at SIZE_MAX instead of overflowing: the shift is capped
  /// at 20 doublings, but a large backoff_base could still wrap, and a
  /// wrapped cost would under-charge the hop budget.
  size_t BackoffCost(size_t k) const {
    const size_t shift = k > 0 ? (k - 1 < 20 ? k - 1 : 20) : 0;
    if (backoff_base > (static_cast<size_t>(-1) >> shift)) {
      return static_cast<size_t>(-1);
    }
    return backoff_base << shift;
  }

  Status Validate() const;
};

}  // namespace digest

#endif  // DIGEST_NET_FAULT_PLAN_H_
