#include "net/peer_health.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/json.h"
#include "common/strings.h"

namespace digest {
namespace {

// ln 10: phi is the base-10 suspicion exponent of the phi-accrual
// detector under an exponential inter-arrival model — phi = k means
// "the chance this peer is merely slow is 10^-k".
constexpr double kLn10 = 2.302585092994045684;

void AppendDouble(std::string* out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *out += buf;
}

void AppendU64(std::string* out, uint64_t v) {
  // Checkpoint convention: uint64 counters ride as decimal strings
  // (exact for the full range; see engine_checkpoint.cc).
  *out += '"';
  *out += std::to_string(v);
  *out += '"';
}

void AppendBool(std::string* out, bool v) { *out += v ? "true" : "false"; }

void AppendPeerJson(std::string* out, const PeerHealthMonitor::PeerState& p) {
  *out += "{\"peer\":";
  *out += std::to_string(p.peer);
  *out += ",\"breaker\":";
  *out += std::to_string(p.breaker);
  *out += ",\"mean_interval\":";
  AppendDouble(out, p.mean_interval);
  *out += ",\"has_success\":";
  AppendBool(out, p.has_success);
  *out += ",\"last_success\":";
  *out += std::to_string(p.last_success);
  *out += ",\"consecutive_failures\":";
  AppendU64(out, p.consecutive_failures);
  *out += ",\"suspect_latched\":";
  AppendBool(out, p.suspect_latched);
  *out += ",\"open_until\":";
  *out += std::to_string(p.open_until);
  *out += ",\"trial_outcomes\":";
  AppendU64(out, p.trial_outcomes);
  *out += ",\"trial_successes\":";
  AppendU64(out, p.trial_successes);
  *out += ",\"successes\":";
  AppendU64(out, p.peer_successes);
  *out += ",\"failures\":";
  AppendU64(out, p.peer_failures);
  *out += '}';
}

Result<PeerHealthMonitor::PeerState> ParsePeerJson(const json::Value& v) {
  PeerHealthMonitor::PeerState p;
  uint64_t peer;
  DIGEST_ASSIGN_OR_RETURN(peer, v.GetUInt64("peer"));
  if (peer >= static_cast<uint64_t>(kInvalidNode)) {
    return Status::InvalidArgument("health: peer id out of range");
  }
  p.peer = static_cast<NodeId>(peer);
  int64_t breaker;
  DIGEST_ASSIGN_OR_RETURN(breaker, v.GetInt64("breaker"));
  if (breaker < 0 || breaker > 2) {
    return Status::InvalidArgument("health: breaker state out of range");
  }
  p.breaker = static_cast<int>(breaker);
  DIGEST_ASSIGN_OR_RETURN(p.mean_interval, v.GetDouble("mean_interval"));
  DIGEST_ASSIGN_OR_RETURN(p.has_success, v.GetBool("has_success"));
  DIGEST_ASSIGN_OR_RETURN(p.last_success, v.GetInt64("last_success"));
  DIGEST_ASSIGN_OR_RETURN(p.consecutive_failures,
                          v.GetUInt64("consecutive_failures"));
  DIGEST_ASSIGN_OR_RETURN(p.suspect_latched, v.GetBool("suspect_latched"));
  DIGEST_ASSIGN_OR_RETURN(p.open_until, v.GetInt64("open_until"));
  DIGEST_ASSIGN_OR_RETURN(p.trial_outcomes, v.GetUInt64("trial_outcomes"));
  DIGEST_ASSIGN_OR_RETURN(p.trial_successes,
                          v.GetUInt64("trial_successes"));
  DIGEST_ASSIGN_OR_RETURN(p.peer_successes, v.GetUInt64("successes"));
  DIGEST_ASSIGN_OR_RETURN(p.peer_failures, v.GetUInt64("failures"));
  return p;
}

}  // namespace

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

Status PeerHealthConfig::Validate() const {
  if (!(interval_alpha > 0.0) || interval_alpha > 1.0) {
    return Status::InvalidArgument(
        "health: interval_alpha must be in (0, 1]");
  }
  if (!(initial_interval > 0.0)) {
    return Status::InvalidArgument(
        "health: initial_interval must be > 0");
  }
  if (!(phi_suspect > 0.0) || !(phi_open > 0.0)) {
    return Status::InvalidArgument(
        "health: phi thresholds must be > 0");
  }
  if (phi_open < phi_suspect) {
    return Status::InvalidArgument(
        "health: phi_open must be >= phi_suspect (a breaker cannot open "
        "below the suspicion it announces)");
  }
  if (failure_floor < 1) {
    return Status::InvalidArgument("health: failure_floor must be >= 1");
  }
  if (open_cooldown < 1) {
    return Status::InvalidArgument("health: open_cooldown must be >= 1");
  }
  if (half_open_probes < 1 || close_successes < 1) {
    return Status::InvalidArgument(
        "health: half-open trial needs half_open_probes >= 1 and "
        "close_successes >= 1");
  }
  if (close_successes > half_open_probes) {
    return Status::InvalidArgument(
        "health: close_successes must fit inside the half_open_probes "
        "trial budget");
  }
  if (!(quarantine_degrade_fraction > 0.0) ||
      quarantine_degrade_fraction > 1.0) {
    return Status::InvalidArgument(
        "health: quarantine_degrade_fraction must be in (0, 1]");
  }
  return Status::OK();
}

PeerHealthMonitor::PeerHealthMonitor(PeerHealthConfig config)
    : config_(config) {}

PeerHealthMonitor::Peer& PeerHealthMonitor::PeerAt(NodeId id) {
  if (static_cast<size_t>(id) >= peers_.size()) {
    peers_.resize(static_cast<size_t>(id) + 1);
  }
  return peers_[id];
}

double PeerHealthMonitor::Phi(const Peer& peer) const {
  // Virtual-time gap since the last delivery, plus the consecutive
  // failure count as sub-tick evidence (a batch folds many outcomes at
  // one tick, and each additional failure is additional evidence).
  double gap = static_cast<double>(peer.consecutive_failures);
  double mean = config_.initial_interval;
  if (peer.has_success) {
    gap += static_cast<double>(
        std::max<int64_t>(0, now_ - peer.last_success));
    mean = std::max(peer.mean_interval, 1e-9);
  }
  return gap / (mean * kLn10);
}

void PeerHealthMonitor::Transition(NodeId id, Peer& peer, BreakerState to,
                                   double phi) {
  const BreakerState from = peer.breaker;
  if (from == to) return;
  if (from == BreakerState::kOpen) --quarantined_;
  if (to == BreakerState::kOpen) ++quarantined_;
  peer.breaker = to;
  ++breaker_transitions_;
  if (obs::Tracing(tracer_)) {
    tracer_->Emit(obs::BreakerTransitionEvent{
        static_cast<uint64_t>(id), BreakerStateName(from),
        BreakerStateName(to), phi});
  }
}

void PeerHealthMonitor::set_now(int64_t t) {
  now_ = t;
  // Age open breakers into their trial window. Main-thread only, and
  // peers are scanned in id order, so the transition (and event) order
  // is deterministic.
  for (NodeId id = 0; id < static_cast<NodeId>(peers_.size()); ++id) {
    Peer& peer = peers_[id];
    if (peer.breaker == BreakerState::kOpen && now_ >= peer.open_until) {
      peer.trial_outcomes = 0;
      peer.trial_successes = 0;
      Transition(id, peer, BreakerState::kHalfOpen, Phi(peer));
    }
  }
}

QuarantineView PeerHealthMonitor::SnapshotView() const {
  if (quarantined_ == 0) return QuarantineView();
  std::vector<uint8_t> flags(peers_.size(), 0);
  size_t count = 0;
  for (size_t i = 0; i < peers_.size(); ++i) {
    if (peers_[i].breaker == BreakerState::kOpen) {
      flags[i] = 1;
      ++count;
    }
  }
  return QuarantineView(std::move(flags), count);
}

void PeerHealthMonitor::RecordOutcome(NodeId id, bool delivered) {
  Peer& peer = PeerAt(id);
  peer.tracked = true;
  ++outcomes_folded_;
  if (delivered) {
    ++successes_;
    ++peer.successes;
    if (peer.has_success) {
      const double interval = static_cast<double>(
          std::max<int64_t>(1, now_ - peer.last_success));
      peer.mean_interval += config_.interval_alpha *
                            (interval - peer.mean_interval);
    } else {
      peer.mean_interval = config_.initial_interval;
      peer.has_success = true;
    }
    peer.last_success = now_;
    peer.consecutive_failures = 0;
    peer.suspect_latched = false;
    if (peer.breaker == BreakerState::kHalfOpen) {
      ++peer.trial_outcomes;
      ++peer.trial_successes;
      if (peer.trial_successes >= config_.close_successes) {
        ++closes_;
        Transition(id, peer, BreakerState::kClosed, 0.0);
      }
    }
    return;
  }
  ++failures_;
  ++peer.failures;
  ++peer.consecutive_failures;
  const double phi = Phi(peer);
  if (!peer.suspect_latched && phi >= config_.phi_suspect) {
    peer.suspect_latched = true;
    ++suspects_;
    if (obs::Tracing(tracer_)) {
      tracer_->Emit(obs::PeerSuspectEvent{static_cast<uint64_t>(id), phi,
                                          peer.consecutive_failures});
    }
  }
  if (!config_.breakers_enabled) return;
  switch (peer.breaker) {
    case BreakerState::kClosed:
      if (phi >= config_.phi_open &&
          peer.consecutive_failures >= config_.failure_floor) {
        peer.open_until = now_ + config_.open_cooldown;
        ++opens_;
        Transition(id, peer, BreakerState::kOpen, phi);
      }
      break;
    case BreakerState::kHalfOpen:
      // Any trial failure re-opens for another cooldown.
      ++peer.trial_outcomes;
      peer.open_until = now_ + config_.open_cooldown;
      ++reopens_;
      Transition(id, peer, BreakerState::kOpen, phi);
      break;
    case BreakerState::kOpen:
      // Straggling outcomes from walks launched before the breaker
      // opened (the view is frozen per batch): evidence only.
      break;
  }
}

void PeerHealthMonitor::FoldWalk(const WalkHealthBuffer& buffer) {
  for (const auto& [peer, delivered] : buffer.outcomes) {
    RecordOutcome(peer, delivered != 0);
  }
}

void PeerHealthMonitor::FinishBatch(size_t population) {
  ++batches_;
  population_ = static_cast<uint64_t>(population);
  if (quarantined_ > 0) quarantine_since_read_ = true;
  const double fraction = QuarantineFraction();
  if (config_.breakers_enabled &&
      fraction >= config_.quarantine_degrade_fraction) {
    if (!degrade_latched_) {
      degrade_latched_ = true;
      ++pending_flips_;
    }
  } else {
    degrade_latched_ = false;
  }
}

BreakerState PeerHealthMonitor::StateOf(NodeId peer) const {
  if (static_cast<size_t>(peer) >= peers_.size()) {
    return BreakerState::kClosed;
  }
  return peers_[peer].breaker;
}

double PeerHealthMonitor::QuarantineFraction() const {
  if (population_ == 0) return 0.0;
  return static_cast<double>(quarantined_) /
         static_cast<double>(population_);
}

bool PeerHealthMonitor::TakePendingQuarantineFlip() {
  if (pending_flips_ == 0) return false;
  --pending_flips_;
  return true;
}

bool PeerHealthMonitor::TakeQuarantineSinceLastRead() {
  const bool q = quarantine_since_read_;
  quarantine_since_read_ = false;
  return q;
}

size_t PeerHealthMonitor::peers_tracked() const {
  size_t tracked = 0;
  for (const Peer& peer : peers_) {
    if (peer.tracked) ++tracked;
  }
  return tracked;
}

double PeerHealthMonitor::FlapRate() const {
  const uint64_t total = opens_ + reopens_;
  if (total == 0) return 0.0;
  return static_cast<double>(reopens_) / static_cast<double>(total);
}

void PeerHealthMonitor::Reset() {
  const PeerHealthConfig config = config_;
  obs::Tracer* tracer = tracer_;
  *this = PeerHealthMonitor(config);
  tracer_ = tracer;
}

void PeerHealthMonitor::ExportToRegistry(obs::Registry* registry) const {
  if (registry == nullptr) return;
  const std::pair<const char*, uint64_t> counters[] = {
      {"health.outcomes", outcomes_folded_},
      {"health.successes", successes_},
      {"health.failures", failures_},
      {"health.suspects", suspects_},
      {"health.breaker_transitions", breaker_transitions_},
      {"health.breaker_opens", opens_},
      {"health.breaker_reopens", reopens_},
      {"health.breaker_closes", closes_},
      {"health.batches", batches_},
  };
  for (const auto& [name, value] : counters) {
    if (value == 0) continue;
    registry->GetCounter(name)->Increment(value);
  }
  registry->GetGauge("health.quarantined")
      ->Set(static_cast<double>(quarantined_));
  registry->GetGauge("health.quarantine_fraction")->Set(QuarantineFraction());
  registry->GetGauge("health.peers_tracked")
      ->Set(static_cast<double>(peers_tracked()));
  registry->GetGauge("health.flap_rate")->Set(FlapRate());
}

std::string PeerHealthMonitor::SummaryJson() const {
  // Keys sorted; counters as plain JSON numbers (bench extras, not the
  // checkpoint codec) — byte-comparable across thread counts/repeats.
  std::string out = "{\"batches\":";
  out += std::to_string(batches_);
  out += ",\"breaker_transitions\":";
  out += std::to_string(breaker_transitions_);
  out += ",\"closes\":";
  out += std::to_string(closes_);
  out += ",\"failures\":";
  out += std::to_string(failures_);
  out += ",\"flap_rate\":";
  AppendDouble(&out, FlapRate());
  out += ",\"opens\":";
  out += std::to_string(opens_);
  out += ",\"outcomes\":";
  out += std::to_string(outcomes_folded_);
  out += ",\"peers_tracked\":";
  out += std::to_string(peers_tracked());
  out += ",\"population\":";
  out += std::to_string(population_);
  out += ",\"quarantine_fraction\":";
  AppendDouble(&out, QuarantineFraction());
  out += ",\"quarantined\":";
  out += std::to_string(quarantined_);
  out += ",\"reopens\":";
  out += std::to_string(reopens_);
  out += ",\"successes\":";
  out += std::to_string(successes_);
  out += ",\"suspects\":";
  out += std::to_string(suspects_);
  out += '}';
  return out;
}

std::string PeerHealthMonitor::SummaryText() const {
  char buf[256];
  std::string out = "== peer health ==\n";
  std::snprintf(buf, sizeof(buf),
                "  peers=%zu quarantined=%zu (%.1f%%) suspects=%llu "
                "transitions=%llu (open=%llu reopen=%llu close=%llu "
                "flap=%.3f)\n",
                peers_tracked(), quarantined_,
                100.0 * QuarantineFraction(),
                static_cast<unsigned long long>(suspects_),
                static_cast<unsigned long long>(breaker_transitions_),
                static_cast<unsigned long long>(opens_),
                static_cast<unsigned long long>(reopens_),
                static_cast<unsigned long long>(closes_), FlapRate());
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  outcomes=%llu delivered=%llu lost=%llu over %llu "
                "batch(es)\n",
                static_cast<unsigned long long>(outcomes_folded_),
                static_cast<unsigned long long>(successes_),
                static_cast<unsigned long long>(failures_),
                static_cast<unsigned long long>(batches_));
  out += buf;
  return out;
}

PeerHealthMonitor::State PeerHealthMonitor::SaveState() const {
  State s;
  s.now = now_;
  for (NodeId id = 0; id < static_cast<NodeId>(peers_.size()); ++id) {
    const Peer& peer = peers_[id];
    if (!peer.tracked && peer.breaker == BreakerState::kClosed) continue;
    PeerState p;
    p.peer = id;
    p.breaker = static_cast<int>(peer.breaker);
    p.mean_interval = peer.mean_interval;
    p.has_success = peer.has_success;
    p.last_success = peer.last_success;
    p.consecutive_failures = peer.consecutive_failures;
    p.suspect_latched = peer.suspect_latched;
    p.open_until = peer.open_until;
    p.trial_outcomes = peer.trial_outcomes;
    p.trial_successes = peer.trial_successes;
    p.peer_successes = peer.successes;
    p.peer_failures = peer.failures;
    s.peers.push_back(p);
  }
  s.outcomes_folded = outcomes_folded_;
  s.successes = successes_;
  s.failures = failures_;
  s.suspects = suspects_;
  s.breaker_transitions = breaker_transitions_;
  s.opens = opens_;
  s.reopens = reopens_;
  s.closes = closes_;
  s.batches = batches_;
  s.population = population_;
  s.degrade_latched = degrade_latched_;
  s.pending_flips = pending_flips_;
  s.quarantine_since_read = quarantine_since_read_;
  return s;
}

void PeerHealthMonitor::RestoreState(const State& state) {
  peers_.clear();
  quarantined_ = 0;
  now_ = state.now;
  for (const PeerState& p : state.peers) {
    Peer& peer = PeerAt(p.peer);
    peer.breaker = static_cast<BreakerState>(p.breaker);
    peer.mean_interval = p.mean_interval;
    peer.has_success = p.has_success;
    peer.last_success = p.last_success;
    peer.consecutive_failures = p.consecutive_failures;
    peer.suspect_latched = p.suspect_latched;
    peer.open_until = p.open_until;
    peer.trial_outcomes = p.trial_outcomes;
    peer.trial_successes = p.trial_successes;
    peer.successes = p.peer_successes;
    peer.failures = p.peer_failures;
    peer.tracked = true;
    if (peer.breaker == BreakerState::kOpen) ++quarantined_;
  }
  outcomes_folded_ = state.outcomes_folded;
  successes_ = state.successes;
  failures_ = state.failures;
  suspects_ = state.suspects;
  breaker_transitions_ = state.breaker_transitions;
  opens_ = state.opens;
  reopens_ = state.reopens;
  closes_ = state.closes;
  batches_ = state.batches;
  population_ = state.population;
  degrade_latched_ = state.degrade_latched;
  pending_flips_ = state.pending_flips;
  quarantine_since_read_ = state.quarantine_since_read;
}

void PeerHealthMonitor::AppendStateJson(const State& s, std::string* out) {
  *out += "{\"now\":";
  *out += std::to_string(s.now);
  *out += ",\"outcomes\":";
  AppendU64(out, s.outcomes_folded);
  *out += ",\"successes\":";
  AppendU64(out, s.successes);
  *out += ",\"failures\":";
  AppendU64(out, s.failures);
  *out += ",\"suspects\":";
  AppendU64(out, s.suspects);
  *out += ",\"breaker_transitions\":";
  AppendU64(out, s.breaker_transitions);
  *out += ",\"opens\":";
  AppendU64(out, s.opens);
  *out += ",\"reopens\":";
  AppendU64(out, s.reopens);
  *out += ",\"closes\":";
  AppendU64(out, s.closes);
  *out += ",\"batches\":";
  AppendU64(out, s.batches);
  *out += ",\"population\":";
  AppendU64(out, s.population);
  *out += ",\"degrade_latched\":";
  AppendBool(out, s.degrade_latched);
  *out += ",\"pending_flips\":";
  AppendU64(out, s.pending_flips);
  *out += ",\"quarantine_since_read\":";
  AppendBool(out, s.quarantine_since_read);
  *out += ",\"peers\":[";
  for (size_t i = 0; i < s.peers.size(); ++i) {
    if (i > 0) *out += ',';
    AppendPeerJson(out, s.peers[i]);
  }
  *out += "]}";
}

Result<PeerHealthMonitor::State> PeerHealthMonitor::ParseStateJson(
    const json::Value& v) {
  State s;
  DIGEST_ASSIGN_OR_RETURN(s.now, v.GetInt64("now"));
  DIGEST_ASSIGN_OR_RETURN(s.outcomes_folded, v.GetUInt64("outcomes"));
  DIGEST_ASSIGN_OR_RETURN(s.successes, v.GetUInt64("successes"));
  DIGEST_ASSIGN_OR_RETURN(s.failures, v.GetUInt64("failures"));
  DIGEST_ASSIGN_OR_RETURN(s.suspects, v.GetUInt64("suspects"));
  DIGEST_ASSIGN_OR_RETURN(s.breaker_transitions,
                          v.GetUInt64("breaker_transitions"));
  DIGEST_ASSIGN_OR_RETURN(s.opens, v.GetUInt64("opens"));
  DIGEST_ASSIGN_OR_RETURN(s.reopens, v.GetUInt64("reopens"));
  DIGEST_ASSIGN_OR_RETURN(s.closes, v.GetUInt64("closes"));
  DIGEST_ASSIGN_OR_RETURN(s.batches, v.GetUInt64("batches"));
  DIGEST_ASSIGN_OR_RETURN(s.population, v.GetUInt64("population"));
  DIGEST_ASSIGN_OR_RETURN(s.degrade_latched, v.GetBool("degrade_latched"));
  DIGEST_ASSIGN_OR_RETURN(s.pending_flips, v.GetUInt64("pending_flips"));
  DIGEST_ASSIGN_OR_RETURN(s.quarantine_since_read,
                          v.GetBool("quarantine_since_read"));
  DIGEST_ASSIGN_OR_RETURN(const json::Value* peers, v.GetArray("peers"));
  s.peers.reserve(peers->array().size());
  NodeId last = 0;
  bool first = true;
  for (const json::Value& pv : peers->array()) {
    DIGEST_ASSIGN_OR_RETURN(PeerState p, ParsePeerJson(pv));
    if (!first && p.peer <= last) {
      return Status::InvalidArgument(
          "health: peers must be strictly ascending by id");
    }
    first = false;
    last = p.peer;
    s.peers.push_back(p);
  }
  return s;
}

}  // namespace digest
