#include "net/graph.h"

#include <algorithm>
#include <deque>
#include <string>

namespace digest {

const std::vector<NodeId> Graph::kEmptyNeighbors;

NodeId Graph::AddNode() {
  adjacency_.push_back(NodeEntry{true, {}});
  ++live_count_;
  return static_cast<NodeId>(adjacency_.size() - 1);
}

Status Graph::RemoveNode(NodeId id) {
  if (!HasNode(id)) {
    return Status::NotFound("node " + std::to_string(id) + " is not live");
  }
  // Detach from every neighbor.
  for (NodeId nb : adjacency_[id].neighbors) {
    auto& list = adjacency_[nb].neighbors;
    list.erase(std::find(list.begin(), list.end(), id));
    --edge_count_;
  }
  adjacency_[id].neighbors.clear();
  adjacency_[id].live = false;
  --live_count_;
  return Status::OK();
}

Status Graph::AddEdge(NodeId a, NodeId b) {
  if (a == b) {
    return Status::InvalidArgument("self-loops are not allowed");
  }
  if (!HasNode(a) || !HasNode(b)) {
    return Status::NotFound("edge endpoint is not a live node");
  }
  if (HasEdge(a, b)) {
    return Status::AlreadyExists("edge already present");
  }
  adjacency_[a].neighbors.push_back(b);
  adjacency_[b].neighbors.push_back(a);
  ++edge_count_;
  return Status::OK();
}

Status Graph::RemoveEdge(NodeId a, NodeId b) {
  if (!HasEdge(a, b)) {
    return Status::NotFound("edge not present");
  }
  auto& la = adjacency_[a].neighbors;
  la.erase(std::find(la.begin(), la.end(), b));
  auto& lb = adjacency_[b].neighbors;
  lb.erase(std::find(lb.begin(), lb.end(), a));
  --edge_count_;
  return Status::OK();
}

bool Graph::HasNode(NodeId id) const {
  return id < adjacency_.size() && adjacency_[id].live;
}

bool Graph::HasEdge(NodeId a, NodeId b) const {
  if (!HasNode(a) || !HasNode(b)) return false;
  const auto& la = adjacency_[a].neighbors;
  const auto& lb = adjacency_[b].neighbors;
  const auto& shorter = la.size() <= lb.size() ? la : lb;
  const NodeId target = la.size() <= lb.size() ? b : a;
  return std::find(shorter.begin(), shorter.end(), target) != shorter.end();
}

size_t Graph::Degree(NodeId id) const {
  return HasNode(id) ? adjacency_[id].neighbors.size() : 0;
}

const std::vector<NodeId>& Graph::Neighbors(NodeId id) const {
  return HasNode(id) ? adjacency_[id].neighbors : kEmptyNeighbors;
}

std::vector<NodeId> Graph::LiveNodes() const {
  std::vector<NodeId> out;
  out.reserve(live_count_);
  for (NodeId id = 0; id < adjacency_.size(); ++id) {
    if (adjacency_[id].live) out.push_back(id);
  }
  return out;
}

Result<NodeId> Graph::RandomLiveNode(Rng& rng) const {
  if (live_count_ == 0) {
    return Status::FailedPrecondition("graph has no live nodes");
  }
  // Rejection over the id space: fine while most ids are live (the churn
  // processes here keep population roughly constant), with a fallback to
  // an explicit scan if the id space has become sparse.
  if (live_count_ * 4 >= adjacency_.size()) {
    while (true) {
      NodeId id = static_cast<NodeId>(rng.NextIndex(adjacency_.size()));
      if (adjacency_[id].live) return id;
    }
  }
  std::vector<NodeId> live = LiveNodes();
  return live[rng.NextIndex(live.size())];
}

Result<NodeId> Graph::RandomNeighbor(NodeId id, Rng& rng) const {
  if (!HasNode(id)) {
    return Status::NotFound("node is not live");
  }
  const auto& nbs = adjacency_[id].neighbors;
  if (nbs.empty()) {
    return Status::FailedPrecondition("node is isolated");
  }
  return nbs[rng.NextIndex(nbs.size())];
}

bool Graph::IsConnected() const {
  if (live_count_ == 0) return true;
  NodeId start = kInvalidNode;
  for (NodeId id = 0; id < adjacency_.size(); ++id) {
    if (adjacency_[id].live) {
      start = id;
      break;
    }
  }
  Result<std::vector<int>> dist = BfsDistances(start);
  if (!dist.ok()) return false;
  size_t reached = 0;
  for (NodeId id = 0; id < adjacency_.size(); ++id) {
    if (adjacency_[id].live && (*dist)[id] >= 0) ++reached;
  }
  return reached == live_count_;
}

Result<std::vector<int>> Graph::BfsDistances(NodeId source) const {
  if (!HasNode(source)) {
    return Status::NotFound("BFS source is not a live node");
  }
  std::vector<int> dist(adjacency_.size(), -1);
  std::deque<NodeId> queue;
  dist[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    NodeId cur = queue.front();
    queue.pop_front();
    for (NodeId nb : adjacency_[cur].neighbors) {
      if (dist[nb] < 0) {
        dist[nb] = dist[cur] + 1;
        queue.push_back(nb);
      }
    }
  }
  return dist;
}

}  // namespace digest
