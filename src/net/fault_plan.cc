#include "net/fault_plan.h"

#include <algorithm>
#include <string>

#include "obs/tracer.h"
#include "prof/profiler.h"

namespace digest {
namespace {

// SplitMix64: the finalizer used to derive per-edge and per-node static
// fault properties from the plan seed. A pure function, so static
// properties can be queried in any order without consuming plan state.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Uniform double in [0, 1) from a hash value.
double HashToUnit(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

constexpr uint64_t kEdgeSalt = 0x45444745u;   // "EDGE"
constexpr uint64_t kStallSalt = 0x5354414cu;  // "STAL"
constexpr uint64_t kSubstreamSalt = 0x53554253u;  // "SUBS"
constexpr uint64_t kPartitionSalt = 0x50415254u;  // "PART"
constexpr uint64_t kFlapSalt = 0x464c4150u;       // "FLAP"
constexpr uint64_t kDirectionSalt = 0x44495245u;  // "DIRE"

Status ValidateProbability(double p, const char* name) {
  if (!(p >= 0.0 && p <= 1.0)) {
    return Status::InvalidArgument(std::string(name) +
                                   " must be a probability in [0, 1]");
  }
  return Status::OK();
}

}  // namespace

Status FaultPlanConfig::Validate() const {
  DIGEST_RETURN_IF_ERROR(ValidateProbability(message_loss, "message_loss"));
  DIGEST_RETURN_IF_ERROR(ValidateProbability(edge_spread, "edge_spread"));
  DIGEST_RETURN_IF_ERROR(ValidateProbability(agent_drop, "agent_drop"));
  DIGEST_RETURN_IF_ERROR(ValidateProbability(stale_probe, "stale_probe"));
  DIGEST_RETURN_IF_ERROR(
      ValidateProbability(stall_fraction, "stall_fraction"));
  if (stale_noise < 0.0) {
    return Status::InvalidArgument("stale_noise must be >= 0");
  }
  DIGEST_RETURN_IF_ERROR(ValidateProbability(flap_fraction, "flap_fraction"));
  DIGEST_RETURN_IF_ERROR(
      ValidateProbability(loss_asymmetry, "loss_asymmetry"));
  // Durations are validated even when the enabling fraction is zero: a
  // negative or inverted window is a config bug whether or not anyone
  // currently stalls or flaps, and set_stall_fraction can turn stalling
  // on later against whatever window is already configured.
  if (stall_every <= 0 || stall_length <= 0) {
    return Status::InvalidArgument(
        "stall windows need positive stall_every and stall_length");
  }
  if (stall_length >= stall_every) {
    return Status::InvalidArgument(
        "stall_length must be shorter than stall_every (a node that "
        "never wakes up is churn, not a stall)");
  }
  if (flap_every <= 0 || flap_length <= 0) {
    return Status::InvalidArgument(
        "flap windows need positive flap_every and flap_length");
  }
  if (flap_length >= flap_every) {
    return Status::InvalidArgument(
        "flap_length must be shorter than flap_every (a link that never "
        "recovers is a removed edge, not a flap)");
  }
  if (partition_every < 0 || partition_length < 0) {
    return Status::InvalidArgument(
        "partition windows must be non-negative");
  }
  if (partition_every == 0 && partition_length != 0) {
    return Status::InvalidArgument(
        "partition_length without partition_every has no schedule to "
        "attach to");
  }
  if (partition_every > 0) {
    if (partition_length < 1 || partition_length >= partition_every) {
      return Status::InvalidArgument(
          "partition_length must be in [1, partition_every) so every "
          "episode both splits and heals");
    }
  }
  if (partition_components < 2) {
    return Status::InvalidArgument(
        "partition_components must be >= 2 (one component is no "
        "partition)");
  }
  return Status::OK();
}

Status FaultPlan::set_message_loss(double p) {
  DIGEST_RETURN_IF_ERROR(ValidateProbability(p, "message_loss"));
  config_.message_loss = p;
  return Status::OK();
}

Status FaultPlan::set_agent_drop(double p) {
  DIGEST_RETURN_IF_ERROR(ValidateProbability(p, "agent_drop"));
  config_.agent_drop = p;
  return Status::OK();
}

Status FaultPlan::set_stale_probe(double p) {
  DIGEST_RETURN_IF_ERROR(ValidateProbability(p, "stale_probe"));
  config_.stale_probe = p;
  return Status::OK();
}

Status FaultPlan::set_stall_fraction(double p) {
  DIGEST_RETURN_IF_ERROR(ValidateProbability(p, "stall_fraction"));
  config_.stall_fraction = p;
  return Status::OK();
}

void FaultPlan::set_now(int64_t t) {
  now_ = t;
  const bool active = PartitionActive();
  const uint64_t episode = PartitionEpisode();
  // A jump across a heal gap (or a whole episode) closes the old window
  // before the new one opens, so begin/end events always pair up.
  if (partition_window_active_ && (!active || episode != active_episode_)) {
    partition_window_active_ = false;
    if (obs::Tracing(tracer_)) {
      tracer_->Emit(obs::PartitionEndEvent{active_episode_});
    }
  }
  if (active && !partition_window_active_) {
    partition_window_active_ = true;
    active_episode_ = episode;
    if (obs::Tracing(tracer_)) {
      tracer_->Emit(obs::PartitionBeginEvent{episode,
                                             config_.partition_components,
                                             config_.partition_length});
    }
  }
}

Status RetryPolicy::Validate() const {
  if (max_attempts < 1) {
    return Status::InvalidArgument("max_attempts must be >= 1");
  }
  if (backoff_base < 1) {
    return Status::InvalidArgument("backoff_base must be >= 1");
  }
  if (!(hop_budget_factor >= 1.0)) {
    return Status::InvalidArgument("hop_budget_factor must be >= 1");
  }
  return Status::OK();
}

FaultPlan::FaultPlan(FaultPlanConfig config, uint64_t seed)
    : config_(config), seed_(seed), rng_(Mix64(seed ^ 0xfa17fa17fa17fa17ULL)) {}

double FaultPlan::EdgeLossRate(NodeId a, NodeId b) const {
  if (config_.message_loss <= 0.0) return 0.0;
  if (config_.edge_spread <= 0.0) return config_.message_loss;
  const uint64_t lo = static_cast<uint64_t>(std::min(a, b));
  const uint64_t hi = static_cast<uint64_t>(std::max(a, b));
  const uint64_t h = Mix64(seed_ ^ Mix64((hi << 32) | lo) ^ kEdgeSalt);
  const double u = 2.0 * HashToUnit(h) - 1.0;  // [-1, 1)
  const double rate = config_.message_loss * (1.0 + config_.edge_spread * u);
  return std::clamp(rate, 0.0, 1.0);
}

double FaultPlan::DirectionalLossRate(NodeId from, NodeId to) const {
  const double base = EdgeLossRate(from, to);
  if (base <= 0.0 || config_.loss_asymmetry <= 0.0 || from == to) {
    return base;
  }
  // The edge's symmetric hash decides which direction is the bad one,
  // so (a, b) and (b, a) always get opposite skews.
  const uint64_t lo = static_cast<uint64_t>(std::min(from, to));
  const uint64_t hi = static_cast<uint64_t>(std::max(from, to));
  const uint64_t h =
      Mix64(seed_ ^ Mix64((hi << 32) | lo) ^ kDirectionSalt);
  const bool low_is_worse = (h & 1) != 0;
  const double s = ((from < to) == low_is_worse) ? 1.0 : -1.0;
  return std::clamp(base * (1.0 + config_.loss_asymmetry * s), 0.0, 1.0);
}

bool FaultPlan::PartitionActive() const {
  if (config_.partition_every <= 0 || config_.partition_length <= 0) {
    return false;
  }
  int64_t offset = now_ % config_.partition_every;
  if (offset < 0) offset += config_.partition_every;
  return offset < config_.partition_length;
}

uint64_t FaultPlan::PartitionEpisode() const {
  if (config_.partition_every <= 0) return 0;
  int64_t episode = now_ / config_.partition_every;
  if (now_ % config_.partition_every < 0) --episode;  // Floor division.
  return static_cast<uint64_t>(episode);
}

uint64_t FaultPlan::PartitionComponent(NodeId node) const {
  const uint64_t k = std::max<uint64_t>(1, config_.partition_components);
  const uint64_t h = Mix64(seed_ ^ Mix64((PartitionEpisode() << 32) ^
                                         static_cast<uint64_t>(node)) ^
                           kPartitionSalt);
  return h % k;
}

bool FaultPlan::CrossPartition(NodeId from, NodeId to) const {
  if (!PartitionActive()) return false;
  return PartitionComponent(from) != PartitionComponent(to);
}

bool FaultPlan::LinkFlapped(NodeId a, NodeId b) const {
  if (config_.flap_fraction <= 0.0) return false;
  const uint64_t lo = static_cast<uint64_t>(std::min(a, b));
  const uint64_t hi = static_cast<uint64_t>(std::max(a, b));
  const uint64_t h = Mix64(seed_ ^ Mix64((hi << 32) | lo) ^ kFlapSalt);
  if (HashToUnit(h) >= config_.flap_fraction) return false;
  // The link flaps: its dark window recurs every flap_every ticks at a
  // per-edge phase, covering flap_length consecutive ticks.
  const int64_t phase = static_cast<int64_t>(
      Mix64(h) % static_cast<uint64_t>(config_.flap_every));
  int64_t offset = (now_ - phase) % config_.flap_every;
  if (offset < 0) offset += config_.flap_every;
  return offset < config_.flap_length;
}

bool FaultPlan::LoseMessage(NodeId from, NodeId to) {
  // Correlated faults first: partitions and flaps are pure hashes of
  // (seed, config, now), so they consume no randomness — the
  // independent-loss draw stream below is untouched by their presence,
  // and substreams see the identical correlated schedule.
  if (CrossPartition(from, to) || LinkFlapped(from, to)) {
    ++losses_injected_;
    if (obs::Tracing(tracer_)) {
      tracer_->Emit(obs::FaultLossEvent{from, to});
    }
    return true;
  }
  const double rate = DirectionalLossRate(from, to);
  if (rate <= 0.0) return false;
  // Times only paths that actually draw from the plan's stream; the
  // zero-rate early-outs above cost no randomness and stay untimed.
  prof::ScopedTimer timer(profiler_, prof::Phase::kFaultDraw);
  timer.AddItems(1);
  if (!rng_.NextBernoulli(rate)) return false;
  ++losses_injected_;
  if (obs::Tracing(tracer_)) {
    tracer_->Emit(obs::FaultLossEvent{from, to});
  }
  return true;
}

bool FaultPlan::DropAgent() {
  if (config_.agent_drop <= 0.0) return false;
  prof::ScopedTimer timer(profiler_, prof::Phase::kFaultDraw);
  timer.AddItems(1);
  if (!rng_.NextBernoulli(config_.agent_drop)) return false;
  ++drops_injected_;
  return true;
}

bool FaultPlan::StaleProbe() {
  if (config_.stale_probe <= 0.0) return false;
  prof::ScopedTimer timer(profiler_, prof::Phase::kFaultDraw);
  timer.AddItems(1);
  if (!rng_.NextBernoulli(config_.stale_probe)) return false;
  ++stale_injected_;
  return true;
}

double FaultPlan::DistortWeight(double weight) {
  prof::ScopedTimer timer(profiler_, prof::Phase::kFaultDraw);
  timer.AddItems(1);
  const double u = 2.0 * rng_.NextDouble() - 1.0;
  return std::max(0.0, weight * (1.0 + config_.stale_noise * u));
}

FaultPlan FaultPlan::SpawnSubstream(uint64_t key) const {
  FaultPlan sub(config_, seed_);
  // Same (config, seed) => same static topology; only the private draw
  // stream is re-keyed. Counters start at zero and tracer/profiler stay
  // detached — the caller attaches its own buffering sinks if needed.
  sub.rng_ = Rng(Mix64(seed_ ^ Mix64(key) ^ kSubstreamSalt));
  sub.now_ = now_;
  // Copy the window flag directly (not via set_now) so spawning never
  // emits partition events — the parent already announced the window.
  sub.partition_window_active_ = partition_window_active_;
  sub.active_episode_ = active_episode_;
  return sub;
}

bool FaultPlan::IsBlackholed(NodeId node) const {
  if (config_.stall_fraction <= 0.0) return false;
  const uint64_t h = Mix64(seed_ ^ Mix64(node) ^ kStallSalt);
  if (HashToUnit(h) >= config_.stall_fraction) return false;
  // The node stalls: its window recurs every stall_every ticks at a
  // per-node phase, covering stall_length consecutive ticks.
  const int64_t phase =
      static_cast<int64_t>(Mix64(h) % static_cast<uint64_t>(
                                          config_.stall_every));
  int64_t offset = (now_ - phase) % config_.stall_every;
  if (offset < 0) offset += config_.stall_every;
  return offset < config_.stall_length;
}

}  // namespace digest
