#include "net/churn.h"

#include <algorithm>
#include <cmath>

#include "net/topology.h"

namespace digest {
namespace {

// floor(rate) events plus one more with probability frac(rate).
size_t DrawCount(double rate, Rng& rng) {
  if (rate <= 0.0) return 0;
  const double whole = std::floor(rate);
  size_t count = static_cast<size_t>(whole);
  if (rng.NextBernoulli(rate - whole)) ++count;
  return count;
}

}  // namespace

Result<ChurnEvents> ChurnProcess::Tick(Graph& graph, Rng& rng) {
  ChurnEvents events;

  // Leaves first (a leave and a join in the same tick are independent
  // peers). Never shrink below the configured floor.
  const size_t leaves = DrawCount(config_.leave_rate, rng);
  for (size_t i = 0; i < leaves; ++i) {
    if (graph.NodeCount() <= config_.min_nodes) break;
    DIGEST_ASSIGN_OR_RETURN(NodeId victim, graph.RandomLiveNode(rng));
    if (victim == config_.protected_node) {
      DIGEST_ASSIGN_OR_RETURN(victim, graph.RandomLiveNode(rng));
      if (victim == config_.protected_node) continue;  // Skip this leave.
    }
    DIGEST_RETURN_IF_ERROR(graph.RemoveNode(victim));
    events.left.push_back(victim);
  }
  if (!events.left.empty()) {
    RepairConnectivity(graph, rng);
  }

  const size_t joins = DrawCount(config_.join_rate, rng);
  for (size_t i = 0; i < joins; ++i) {
    if (graph.NodeCount() == 0) break;
    std::vector<NodeId> live = graph.LiveNodes();
    NodeId fresh = graph.AddNode();
    const size_t want =
        std::min(config_.attach_edges == 0 ? size_t{1} : config_.attach_edges,
                 live.size());
    size_t made = 0;
    size_t guard = 0;
    while (made < want && guard < 64 * want + 64) {
      ++guard;
      NodeId target;
      if (config_.preferential_attachment) {
        // Degree-proportional pick by rejection: accept a uniform live
        // node with probability degree/max_degree.
        size_t max_degree = 1;
        for (NodeId id : live) max_degree = std::max(max_degree,
                                                     graph.Degree(id));
        target = live[rng.NextIndex(live.size())];
        if (!rng.NextBernoulli(static_cast<double>(graph.Degree(target)) /
                               static_cast<double>(max_degree))) {
          continue;
        }
      } else {
        target = live[rng.NextIndex(live.size())];
      }
      if (graph.AddEdge(fresh, target).ok()) ++made;
    }
    if (made == 0) {
      // Could not attach (degenerate small graph): fall back to the first
      // live node to keep the overlay connected.
      DIGEST_RETURN_IF_ERROR(graph.AddEdge(fresh, live.front()));
    }
    events.joined.push_back(fresh);
  }
  return events;
}

}  // namespace digest
