#ifndef DIGEST_NET_TOPOLOGY_H_
#define DIGEST_NET_TOPOLOGY_H_

#include <cstddef>

#include "common/result.h"
#include "net/graph.h"
#include "numeric/rng.h"

namespace digest {

/// Topology generators for the overlay substrates used in the paper's
/// experiments (§VI-A simulates a mesh network for the weather-station
/// workload and a power-law network for the SETI@home workload) plus a
/// few reference topologies for testing.
///
/// All generators return connected, non-bipartite-after-lazification
/// graphs (the Metropolis walk adds the ½ self-loop, so bipartite inputs
/// such as even rings are still fine for sampling).

/// Cycle over n ≥ 3 nodes.
Result<Graph> MakeRing(size_t n);

/// Complete graph over n ≥ 2 nodes.
Result<Graph> MakeComplete(size_t n);

/// rows×cols grid (4-neighborhood). `torus` wraps the borders.
/// Requires rows ≥ 2 and cols ≥ 2.
Result<Graph> MakeMesh(size_t rows, size_t cols, bool torus = false);

/// Erdős–Rényi G(n, p) with connectivity repair: after sampling edges,
/// components are joined with random inter-component edges so the result
/// is always connected. Requires n ≥ 2 and p in [0, 1].
Result<Graph> MakeErdosRenyi(size_t n, double p, Rng& rng);

/// Barabási–Albert preferential attachment: each new node attaches to
/// `edges_per_node` ≥ 1 existing nodes with probability proportional to
/// degree, yielding a power-law degree distribution (the paper's generic
/// model of unstructured P2P topologies, Theorem 4). Requires
/// n > edges_per_node.
Result<Graph> MakeBarabasiAlbert(size_t n, size_t edges_per_node, Rng& rng);

/// Watts–Strogatz small world: a ring lattice where every node connects
/// to its `k` nearest neighbors on each side, with each lattice edge
/// rewired to a random endpoint with probability `beta`. β = 0 is a pure
/// lattice, β = 1 approaches a random graph; intermediate β gives the
/// high-clustering/short-path regime typical of social overlays.
/// Requires n > 2k ≥ 2 and beta in [0, 1]. Connectivity is repaired
/// after rewiring.
Result<Graph> MakeWattsStrogatz(size_t n, size_t k, double beta, Rng& rng);

/// Random d-regular graph by the pairing model with retries: every node
/// has exactly `degree` neighbors. Requires n·degree even, degree ≥ 2,
/// and n > degree. Connectivity is repaired if a rare disconnected
/// pairing survives (which perturbs regularity minimally).
Result<Graph> MakeRandomRegular(size_t n, size_t degree, Rng& rng);

/// Adds random edges between the connected components of `graph` until it
/// is connected. Returns the number of edges added.
size_t RepairConnectivity(Graph& graph, Rng& rng);

}  // namespace digest

#endif  // DIGEST_NET_TOPOLOGY_H_
