#include "net/topology.h"

#include <algorithm>
#include <numeric>
#include <vector>

namespace digest {
namespace {

// Union-find over node ids for connectivity repair.
class DisjointSet {
 public:
  explicit DisjointSet(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  bool Union(size_t a, size_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    parent_[a] = b;
    return true;
  }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

Result<Graph> MakeRing(size_t n) {
  if (n < 3) {
    return Status::InvalidArgument("ring requires at least 3 nodes");
  }
  Graph g;
  for (size_t i = 0; i < n; ++i) g.AddNode();
  for (size_t i = 0; i < n; ++i) {
    DIGEST_RETURN_IF_ERROR(g.AddEdge(static_cast<NodeId>(i),
                                     static_cast<NodeId>((i + 1) % n)));
  }
  return g;
}

Result<Graph> MakeComplete(size_t n) {
  if (n < 2) {
    return Status::InvalidArgument("complete graph requires at least 2 nodes");
  }
  Graph g;
  for (size_t i = 0; i < n; ++i) g.AddNode();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      DIGEST_RETURN_IF_ERROR(
          g.AddEdge(static_cast<NodeId>(i), static_cast<NodeId>(j)));
    }
  }
  return g;
}

Result<Graph> MakeMesh(size_t rows, size_t cols, bool torus) {
  if (rows < 2 || cols < 2) {
    return Status::InvalidArgument("mesh requires rows >= 2 and cols >= 2");
  }
  Graph g;
  for (size_t i = 0; i < rows * cols; ++i) g.AddNode();
  auto id = [cols](size_t r, size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        DIGEST_RETURN_IF_ERROR(g.AddEdge(id(r, c), id(r, c + 1)));
      } else if (torus && cols > 2) {
        DIGEST_RETURN_IF_ERROR(g.AddEdge(id(r, c), id(r, 0)));
      }
      if (r + 1 < rows) {
        DIGEST_RETURN_IF_ERROR(g.AddEdge(id(r, c), id(r + 1, c)));
      } else if (torus && rows > 2) {
        DIGEST_RETURN_IF_ERROR(g.AddEdge(id(r, c), id(0, c)));
      }
    }
  }
  return g;
}

Result<Graph> MakeErdosRenyi(size_t n, double p, Rng& rng) {
  if (n < 2) {
    return Status::InvalidArgument("ER graph requires at least 2 nodes");
  }
  if (p < 0.0 || p > 1.0) {
    return Status::InvalidArgument("edge probability must be in [0, 1]");
  }
  Graph g;
  for (size_t i = 0; i < n; ++i) g.AddNode();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (rng.NextBernoulli(p)) {
        DIGEST_RETURN_IF_ERROR(
            g.AddEdge(static_cast<NodeId>(i), static_cast<NodeId>(j)));
      }
    }
  }
  RepairConnectivity(g, rng);
  return g;
}

Result<Graph> MakeBarabasiAlbert(size_t n, size_t edges_per_node, Rng& rng) {
  if (edges_per_node < 1) {
    return Status::InvalidArgument("BA requires edges_per_node >= 1");
  }
  if (n <= edges_per_node) {
    return Status::InvalidArgument("BA requires n > edges_per_node");
  }
  Graph g;
  const size_t m = edges_per_node;
  // Seed clique of m+1 nodes.
  for (size_t i = 0; i <= m; ++i) g.AddNode();
  for (size_t i = 0; i <= m; ++i) {
    for (size_t j = i + 1; j <= m; ++j) {
      DIGEST_RETURN_IF_ERROR(
          g.AddEdge(static_cast<NodeId>(i), static_cast<NodeId>(j)));
    }
  }
  // Repeated-endpoint list: picking a uniform entry is degree-proportional
  // preferential attachment.
  std::vector<NodeId> endpoints;
  endpoints.reserve(2 * n * m);
  for (size_t i = 0; i <= m; ++i) {
    for (NodeId nb : g.Neighbors(static_cast<NodeId>(i))) {
      (void)nb;
      endpoints.push_back(static_cast<NodeId>(i));
    }
  }
  while (g.NodeCount() < n) {
    NodeId fresh = g.AddNode();
    std::vector<NodeId> targets;
    while (targets.size() < m) {
      NodeId candidate = endpoints[rng.NextIndex(endpoints.size())];
      if (candidate != fresh &&
          std::find(targets.begin(), targets.end(), candidate) ==
              targets.end()) {
        targets.push_back(candidate);
      }
    }
    for (NodeId t : targets) {
      DIGEST_RETURN_IF_ERROR(g.AddEdge(fresh, t));
      endpoints.push_back(fresh);
      endpoints.push_back(t);
    }
  }
  return g;
}

Result<Graph> MakeWattsStrogatz(size_t n, size_t k, double beta, Rng& rng) {
  if (k < 1 || n <= 2 * k) {
    return Status::InvalidArgument("Watts-Strogatz requires n > 2k >= 2");
  }
  if (beta < 0.0 || beta > 1.0) {
    return Status::InvalidArgument("rewiring probability must be in [0, 1]");
  }
  Graph g;
  for (size_t i = 0; i < n; ++i) g.AddNode();
  // Ring lattice: node i connects to i+1 .. i+k (mod n).
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 1; j <= k; ++j) {
      const NodeId a = static_cast<NodeId>(i);
      const NodeId b = static_cast<NodeId>((i + j) % n);
      Status s = g.AddEdge(a, b);
      if (!s.ok() && s.code() != StatusCode::kAlreadyExists) return s;
    }
  }
  // Rewire each lattice edge (i, i+j) with probability beta, keeping i
  // and retargeting to a uniform node (no self-loops/duplicates).
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 1; j <= k; ++j) {
      if (!rng.NextBernoulli(beta)) continue;
      const NodeId a = static_cast<NodeId>(i);
      const NodeId b = static_cast<NodeId>((i + j) % n);
      if (!g.HasEdge(a, b)) continue;  // Already rewired away.
      // Find a fresh target; give up after a few tries in dense corners.
      for (int attempt = 0; attempt < 16; ++attempt) {
        const NodeId c = static_cast<NodeId>(rng.NextIndex(n));
        if (c == a || g.HasEdge(a, c)) continue;
        DIGEST_RETURN_IF_ERROR(g.RemoveEdge(a, b));
        DIGEST_RETURN_IF_ERROR(g.AddEdge(a, c));
        break;
      }
    }
  }
  RepairConnectivity(g, rng);
  return g;
}

Result<Graph> MakeRandomRegular(size_t n, size_t degree, Rng& rng) {
  if (degree < 2 || n <= degree) {
    return Status::InvalidArgument(
        "random regular graph requires n > degree >= 2");
  }
  if ((n * degree) % 2 != 0) {
    return Status::InvalidArgument("n * degree must be even");
  }
  // Pairing model: each node contributes `degree` stubs; repeatedly draw
  // a random perfect matching on the stubs and retry on self-loops or
  // duplicate edges (cheap at simulation sizes).
  for (int attempt = 0; attempt < 200; ++attempt) {
    std::vector<NodeId> stubs;
    stubs.reserve(n * degree);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < degree; ++j) {
        stubs.push_back(static_cast<NodeId>(i));
      }
    }
    // Fisher-Yates shuffle, then pair consecutive stubs.
    for (size_t i = stubs.size(); i > 1; --i) {
      std::swap(stubs[i - 1], stubs[rng.NextIndex(i)]);
    }
    Graph g;
    for (size_t i = 0; i < n; ++i) g.AddNode();
    bool ok = true;
    for (size_t i = 0; i + 1 < stubs.size(); i += 2) {
      if (stubs[i] == stubs[i + 1] || g.HasEdge(stubs[i], stubs[i + 1])) {
        ok = false;
        break;
      }
      DIGEST_RETURN_IF_ERROR(g.AddEdge(stubs[i], stubs[i + 1]));
    }
    if (!ok) continue;
    RepairConnectivity(g, rng);
    return g;
  }
  return Status::NumericError(
      "pairing model failed to produce a simple graph");
}

size_t RepairConnectivity(Graph& graph, Rng& rng) {
  std::vector<NodeId> live = graph.LiveNodes();
  if (live.size() < 2) return 0;
  DisjointSet ds(graph.NextId());
  for (NodeId id : live) {
    for (NodeId nb : graph.Neighbors(id)) {
      ds.Union(id, nb);
    }
  }
  // Group representatives -> one random member per component.
  std::vector<NodeId> reps;
  std::vector<NodeId> member_of;  // Parallel to reps.
  for (NodeId id : live) {
    const size_t root = ds.Find(id);
    bool found = false;
    for (size_t i = 0; i < reps.size(); ++i) {
      if (reps[i] == root) {
        found = true;
        break;
      }
    }
    if (!found) {
      reps.push_back(static_cast<NodeId>(root));
      member_of.push_back(id);
    }
  }
  size_t added = 0;
  // Chain the components together with random member pairs.
  for (size_t i = 1; i < member_of.size(); ++i) {
    NodeId a = member_of[i - 1];
    NodeId b = member_of[i];
    // Pick random members inside each side for variety.
    (void)rng;
    if (graph.AddEdge(a, b).ok()) {
      ds.Union(a, b);
      ++added;
    }
  }
  return added;
}

}  // namespace digest
