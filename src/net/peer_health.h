#ifndef DIGEST_NET_PEER_HEALTH_H_
#define DIGEST_NET_PEER_HEALTH_H_

// Adaptive peer-health layer: a deterministic, virtual-time phi-accrual
// failure detector fed by per-peer probe/hop outcomes, driving per-peer
// circuit breakers (closed -> open -> half-open) and a quarantine set
// the sampler routes around (src/sampling quarantine-aware Metropolis).
//
// Every failure response below this layer is memoryless — retries,
// hedges, and supervisor flips use fixed thresholds and never learn
// WHICH peers are bad. The monitor closes that gap: it accrues per-peer
// suspicion from the outcomes the walks already observe (delivered vs
// lost transmissions, stalled hosts), opens a breaker when suspicion is
// sustained, and re-admits the peer through a budgeted half-open trial
// window once the cooldown elapses.
//
// Determinism contract (the same discipline as src/diag):
//  - the monitor consumes no RNG and reads no wall clock; suspicion is
//    a pure fold over (outcome sequence, virtual time);
//  - walks record raw outcomes into per-walk WalkHealthBuffers (no
//    aggregation, no shared state), which the sampling operator folds
//    on the main thread in walk-index order — so the health state, the
//    quarantine set, and therefore the walks of every LATER batch are
//    bit-identical for any worker-thread count (test-enforced);
//  - the quarantine view a batch routes against is frozen before the
//    batch launches; outcomes fold after the batch barrier, so no walk
//    ever observes a mid-batch breaker flip;
//  - a null monitor pointer in the operator is the fast path, and an
//    attached monitor whose quarantine set is empty leaves the walk's
//    draw sequence bit-identical to an unmonitored run (test-enforced).
//
// Unlike the tracer/profiler/auditor, the monitor intentionally STEERS:
// an open breaker removes the peer from the proposal distribution. The
// degree corrections in sampling/random_walk.cc keep the stationary
// target over the remaining live peers unchanged (verified against the
// src/diag TV gate), so steering trades coverage of the quarantined
// peer for unbiasedness over everyone else.

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "net/graph.h"
#include "obs/metrics.h"
#include "obs/tracer.h"

namespace digest {
namespace json {
class Value;
}  // namespace json

/// Tuning for the phi detector and the breaker state machine. The
/// defaults suit tick-granular virtual time where a peer sees a handful
/// of deliveries per batch.
struct PeerHealthConfig {
  /// Master switch for the breakers (the ablation dial): when false the
  /// monitor still folds outcomes and scores suspicion — peer_suspect
  /// events, registry keys, and the summary stay live — but breakers
  /// never open and the quarantine set stays empty, so routing is
  /// untouched. Bench ablations compare coverage with and without it.
  bool breakers_enabled = true;

  /// EWMA smoothing for the per-peer inter-success interval estimate.
  double interval_alpha = 0.25;

  /// Prior mean inter-success interval (ticks) before a peer's first
  /// delivery — the scale phi starts from for never-seen peers.
  double initial_interval = 1.0;

  /// Suspicion level phi = gap / (mean_interval · ln 10) — the
  /// phi-accrual suspicion under an exponential inter-arrival model,
  /// where `gap` is the virtual time since the peer's last delivery
  /// plus the consecutive-failure count (sub-tick evidence: many
  /// outcomes share one tick). phi ≥ phi_suspect emits peer_suspect;
  /// phi ≥ phi_open (with at least failure_floor consecutive failures)
  /// opens the breaker.
  double phi_suspect = 1.0;
  double phi_open = 2.0;

  /// Minimum consecutive failures before a breaker may open — one lost
  /// message under 30% random loss is noise, not a dead peer.
  uint64_t failure_floor = 3;

  /// Ticks an open breaker quarantines the peer before the trial
  /// (half-open) window begins.
  int64_t open_cooldown = 8;

  /// Outcomes considered in the half-open trial window: the first
  /// `half_open_probes` folded outcomes decide — `close_successes`
  /// successes (with no failure first) close the breaker; any failure
  /// re-opens it for another cooldown.
  uint64_t half_open_probes = 4;
  uint64_t close_successes = 2;

  /// When quarantined / population crosses this fraction the monitor
  /// asks the engine (one-tick-lag, like the audit drift flip) to
  /// degrade the session supervisor with outcome "peer_quarantine".
  double quarantine_degrade_fraction = 0.5;

  Status Validate() const;
};

/// Breaker state of one peer.
enum class BreakerState : int {
  kClosed = 0,    ///< Healthy: routed normally.
  kOpen = 1,      ///< Quarantined: removed from proposal distributions.
  kHalfOpen = 2,  ///< Trial: routed again, first outcomes decide.
};

/// Stable lower-snake name (trace events, reports).
const char* BreakerStateName(BreakerState state);

/// Immutable snapshot of the quarantine set, taken on the main thread
/// before a batch launches and shared read-only by every worker. A
/// default-constructed view quarantines nothing.
class QuarantineView {
 public:
  QuarantineView() = default;
  QuarantineView(std::vector<uint8_t> flags, size_t count)
      : flags_(std::move(flags)), count_(count) {}

  bool Quarantined(NodeId id) const {
    return id < flags_.size() && flags_[id] != 0;
  }
  /// Fast emptiness check: the walk takes its legacy draw path (bit-
  /// identical to an unmonitored run) when nothing is quarantined.
  bool Any() const { return count_ > 0; }
  size_t count() const { return count_; }

 private:
  std::vector<uint8_t> flags_;  ///< Indexed by NodeId.
  size_t count_ = 0;
};

/// Per-walk outcome scratchpad, the health twin of diag::WalkDiagBuffer:
/// one instance rides each walk through a batch (thread-locally under
/// the parallel executor) and records raw facts only — no aggregation,
/// no RNG, no clock — so the fold into PeerHealthMonitor happens on the
/// main thread in walk-index order.
struct WalkHealthBuffer {
  /// (peer, delivered) per transmission attempt, in attempt order.
  std::vector<std::pair<NodeId, uint8_t>> outcomes;

  void RecordSuccess(NodeId peer) { outcomes.emplace_back(peer, 1); }
  void RecordFailure(NodeId peer) { outcomes.emplace_back(peer, 0); }

  void Clear() { outcomes.clear(); }
  bool Empty() const { return outcomes.empty(); }
};

/// The per-session peer-health monitor. Wiring mirrors the auditor:
///  - the engine holds a non-owning pointer (DigestEngineOptions::
///    health), advances its virtual clock at the top of each Tick, and
///    drains TakePendingQuarantineFlip into the supervisor;
///  - the sampling operator snapshots the quarantine view at batch
///    start, folds delivered walks' buffers in walk-index order, and
///    closes each batch with FinishBatch(population).
class PeerHealthMonitor {
 public:
  explicit PeerHealthMonitor(PeerHealthConfig config = PeerHealthConfig());

  const PeerHealthConfig& config() const { return config_; }

  /// Attaches (or detaches, with nullptr) the trace sink for
  /// peer_suspect / breaker_transition events. Not owned; must outlive
  /// the monitor. Observation only: attaching a tracer never changes
  /// the health state (test-enforced).
  void SetTracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Advances the virtual clock. Open breakers whose cooldown elapsed
  /// transition to half-open here (deterministically, on the main
  /// thread), so a batch at time t routes against breakers aged to t.
  void set_now(int64_t t);
  int64_t now() const { return now_; }

  /// Immutable quarantine snapshot for one batch (open breakers only;
  /// half-open peers are routed again — their trial outcomes decide).
  QuarantineView SnapshotView() const;

  /// Folds one delivered walk's outcome buffer. Call on the main
  /// thread, in walk-index order; timed-out/cut walks are not folded
  /// (mirrors the diag rule — folding them would make the health state
  /// depend on scheduling).
  void FoldWalk(const WalkHealthBuffer& buffer);

  /// Closes a batch: records the routing population (live node count,
  /// for the quarantine fraction), latches the supervisor flip when the
  /// fraction crosses the configured threshold, and bumps the batch
  /// counter.
  void FinishBatch(size_t population);

  /// Current breaker state of a peer (kClosed for never-seen peers).
  BreakerState StateOf(NodeId peer) const;

  /// Peers currently quarantined (open breakers).
  size_t quarantined() const { return quarantined_; }

  /// quarantined / population of the last finished batch (0 before the
  /// first batch).
  double QuarantineFraction() const;

  /// True once per threshold crossing since the last call: the engine
  /// drains this at the top of each Tick and degrades the supervisor
  /// for each true return (one-tick lag, like the audit drift flip).
  bool TakePendingQuarantineFlip();

  /// Returns whether any fold since the previous call ran with a
  /// non-empty quarantine set, and clears the flag — the engine reads
  /// this once per snapshot occasion to stamp
  /// SnapshotObservation::quarantine.
  bool TakeQuarantineSinceLastRead();

  /// Run counters, for tests, the registry, and the summary.
  uint64_t outcomes_folded() const { return outcomes_folded_; }
  uint64_t successes() const { return successes_; }
  uint64_t failures() const { return failures_; }
  uint64_t suspects() const { return suspects_; }
  uint64_t breaker_transitions() const { return breaker_transitions_; }
  uint64_t opens() const { return opens_; }
  uint64_t reopens() const { return reopens_; }
  uint64_t closes() const { return closes_; }
  uint64_t batches() const { return batches_; }
  size_t peers_tracked() const;

  /// Flap rate: re-opens per open — breakers that keep bouncing between
  /// open and half-open (tools/health_report.py gates on it).
  double FlapRate() const;

  /// Clears all state back to construction (the experiment harness
  /// calls this at run start, like SamplerDiag::Reset).
  void Reset();

  /// Dumps counters and the current quarantine picture into `registry`
  /// under the health.* namespace. Null registry is a no-op.
  void ExportToRegistry(obs::Registry* registry) const;

  /// Deterministic one-line JSON summary (keys sorted, %.17g doubles) —
  /// spliced into bench extras and compared byte-for-byte by the
  /// thread-invariance and repeat-stability gates.
  std::string SummaryJson() const;

  /// Human-readable two-line digest of SummaryJson for bench output.
  std::string SummaryText() const;

  /// Serializable per-run state for the engine checkpoint ("health"
  /// section of digest-checkpoint-v3). Config is configuration, not
  /// state, matching the checkpoint discipline.
  struct PeerState {
    NodeId peer = 0;
    int breaker = 0;  ///< BreakerState ladder index.
    double mean_interval = 0.0;
    bool has_success = false;
    int64_t last_success = 0;
    uint64_t consecutive_failures = 0;
    bool suspect_latched = false;
    int64_t open_until = 0;
    uint64_t trial_outcomes = 0;
    uint64_t trial_successes = 0;
    uint64_t peer_successes = 0;
    uint64_t peer_failures = 0;
  };
  struct State {
    int64_t now = 0;
    std::vector<PeerState> peers;  ///< Ascending NodeId.
    uint64_t outcomes_folded = 0;
    uint64_t successes = 0;
    uint64_t failures = 0;
    uint64_t suspects = 0;
    uint64_t breaker_transitions = 0;
    uint64_t opens = 0;
    uint64_t reopens = 0;
    uint64_t closes = 0;
    uint64_t batches = 0;
    uint64_t population = 0;
    bool degrade_latched = false;
    uint64_t pending_flips = 0;
    bool quarantine_since_read = false;
  };
  State SaveState() const;
  void RestoreState(const State& state);

  /// JSON codec for State, used by the engine checkpoint. Append emits
  /// a stable object; Parse validates everything before returning (so
  /// the engine's parse-all-then-install discipline extends to health
  /// state).
  static void AppendStateJson(const State& state, std::string* out);
  static Result<State> ParseStateJson(const json::Value& value);

 private:
  struct Peer {
    BreakerState breaker = BreakerState::kClosed;
    double mean_interval = 0.0;  ///< EWMA of inter-success gaps (ticks).
    bool has_success = false;
    int64_t last_success = 0;  ///< Valid when has_success.
    uint64_t consecutive_failures = 0;
    bool suspect_latched = false;  ///< peer_suspect emitted this excursion.
    int64_t open_until = 0;        ///< Valid when breaker == kOpen.
    uint64_t trial_outcomes = 0;   ///< Half-open outcomes consumed.
    uint64_t trial_successes = 0;
    uint64_t successes = 0;
    uint64_t failures = 0;
    bool tracked = false;  ///< Has folded at least one outcome.
  };

  Peer& PeerAt(NodeId id);
  double Phi(const Peer& peer) const;
  void Transition(NodeId id, Peer& peer, BreakerState to, double phi);
  void RecordOutcome(NodeId id, bool delivered);

  PeerHealthConfig config_;
  obs::Tracer* tracer_ = nullptr;
  int64_t now_ = 0;
  std::vector<Peer> peers_;  ///< Indexed by NodeId, grown on demand.
  size_t quarantined_ = 0;

  uint64_t outcomes_folded_ = 0;
  uint64_t successes_ = 0;
  uint64_t failures_ = 0;
  uint64_t suspects_ = 0;
  uint64_t breaker_transitions_ = 0;
  uint64_t opens_ = 0;
  uint64_t reopens_ = 0;
  uint64_t closes_ = 0;
  uint64_t batches_ = 0;
  uint64_t population_ = 0;  ///< Live nodes at the last FinishBatch.
  bool degrade_latched_ = false;
  uint64_t pending_flips_ = 0;
  bool quarantine_since_read_ = false;
};

}  // namespace digest

#endif  // DIGEST_NET_PEER_HEALTH_H_
