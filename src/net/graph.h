#ifndef DIGEST_NET_GRAPH_H_
#define DIGEST_NET_GRAPH_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "numeric/rng.h"

namespace digest {

/// Stable identifier of an overlay node. Ids are never reused within one
/// Graph, so references held across churn events stay unambiguous.
using NodeId = uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// Undirected overlay graph of a peer-to-peer network (paper §II).
///
/// Supports arbitrary topology and dynamic membership: nodes join and
/// leave (churn) and edges are rewired, while ids of live nodes remain
/// stable. Degree lookups and uniform neighbor picks are O(1), which is
/// what the Metropolis random walk needs; edge insertion/removal is
/// O(degree).
class Graph {
 public:
  Graph() = default;

  /// Adds an isolated node and returns its id.
  NodeId AddNode();

  /// Removes a node and all incident edges. Fails if the node is not live.
  Status RemoveNode(NodeId id);

  /// Adds an undirected edge. Fails if either endpoint is dead, the edge
  /// already exists, or it is a self-loop.
  Status AddEdge(NodeId a, NodeId b);

  /// Removes an undirected edge. Fails if it does not exist.
  Status RemoveEdge(NodeId a, NodeId b);

  /// True iff the node id is live.
  bool HasNode(NodeId id) const;

  /// True iff both nodes are live and adjacent.
  bool HasEdge(NodeId a, NodeId b) const;

  /// Degree of a live node; 0 for dead/unknown ids.
  size_t Degree(NodeId id) const;

  /// Neighbor list of a live node (unordered). The reference is
  /// invalidated by any mutation of the graph.
  const std::vector<NodeId>& Neighbors(NodeId id) const;

  /// Number of live nodes.
  size_t NodeCount() const { return live_count_; }

  /// Number of undirected edges.
  size_t EdgeCount() const { return edge_count_; }

  /// Total ids ever allocated (live + dead); ids are < NextId().
  NodeId NextId() const { return static_cast<NodeId>(adjacency_.size()); }

  /// All live node ids, ascending.
  std::vector<NodeId> LiveNodes() const;

  /// Uniformly random live node; fails when the graph is empty.
  Result<NodeId> RandomLiveNode(Rng& rng) const;

  /// Uniformly random neighbor of `id`; fails for dead or isolated nodes.
  Result<NodeId> RandomNeighbor(NodeId id, Rng& rng) const;

  /// True iff every live node can reach every other live node.
  bool IsConnected() const;

  /// BFS hop distances from `source` to every id; -1 marks unreachable or
  /// dead ids. Fails if `source` is dead.
  Result<std::vector<int>> BfsDistances(NodeId source) const;

 private:
  struct NodeEntry {
    bool live = false;
    std::vector<NodeId> neighbors;
  };

  std::vector<NodeEntry> adjacency_;
  size_t live_count_ = 0;
  size_t edge_count_ = 0;
  static const std::vector<NodeId> kEmptyNeighbors;
};

}  // namespace digest

#endif  // DIGEST_NET_GRAPH_H_
