#ifndef DIGEST_COMMON_JSON_H_
#define DIGEST_COMMON_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace digest {
namespace json {

/// Minimal JSON document model + recursive-descent parser.
///
/// This exists for one consumer: the engine checkpoint/restore path,
/// which round-trips its own exporter-style output (objects, arrays,
/// strings escaped by AppendJsonEscaped, numbers printed with %.17g,
/// and uint64 values carried as decimal strings because a JSON double
/// cannot hold 2^64-1). It is a strict parser — trailing garbage,
/// trailing commas, and unescaped control characters are errors — and
/// all failures surface as Status::InvalidArgument, never exceptions.
///
/// Numbers are kept as their raw source text; callers pick the lossless
/// conversion they need (AsDouble / AsInt64 / AsUInt64).
class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() : type_(Type::kNull) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Valid only for kBool.
  bool bool_value() const { return bool_; }

  /// Raw number text (e.g. "1.5e-3"); valid only for kNumber.
  const std::string& number_text() const { return scalar_; }

  /// Decoded string contents; valid only for kString.
  const std::string& string_value() const { return scalar_; }

  /// Elements; valid only for kArray.
  const std::vector<Value>& array() const { return array_; }

  /// Members in source order; valid only for kObject.
  const std::vector<std::pair<std::string, Value>>& members() const {
    return members_;
  }

  /// First member named `key`, or nullptr (also for non-objects).
  const Value* Find(std::string_view key) const;

  /// Typed lookups: InvalidArgument if missing or the wrong type.
  Result<bool> GetBool(std::string_view key) const;
  Result<double> GetDouble(std::string_view key) const;
  Result<int64_t> GetInt64(std::string_view key) const;
  Result<uint64_t> GetUInt64(std::string_view key) const;
  Result<std::string> GetString(std::string_view key) const;
  Result<const Value*> GetArray(std::string_view key) const;
  Result<const Value*> GetObject(std::string_view key) const;

  /// Numeric conversions; InvalidArgument on non-numbers, overflow, or
  /// (for the integer forms) fractional/exponent text.
  Result<double> AsDouble() const;
  Result<int64_t> AsInt64() const;
  Result<uint64_t> AsUInt64() const;

  static Value MakeNull() { return Value(); }
  static Value MakeBool(bool b);
  static Value MakeNumber(std::string text);
  static Value MakeString(std::string s);
  static Value MakeArray(std::vector<Value> elems);
  static Value MakeObject(std::vector<std::pair<std::string, Value>> members);

 private:
  Type type_;
  bool bool_ = false;
  std::string scalar_;  // number text or decoded string
  std::vector<Value> array_;
  std::vector<std::pair<std::string, Value>> members_;
};

/// Parses a complete JSON document; the whole input must be consumed
/// (aside from trailing whitespace).
Result<Value> Parse(std::string_view text);

}  // namespace json
}  // namespace digest

#endif  // DIGEST_COMMON_JSON_H_
