#ifndef DIGEST_COMMON_STRINGS_H_
#define DIGEST_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace digest {

/// Returns `s` with ASCII whitespace removed from both ends.
std::string_view StripWhitespace(std::string_view s);

/// Splits `s` on `delim`, trimming whitespace from each piece. Empty pieces
/// are kept (so "a,,b" yields {"a", "", "b"}).
std::vector<std::string> SplitAndTrim(std::string_view s, char delim);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Uppercases ASCII letters in `s`.
std::string ToUpperAscii(std::string_view s);

/// Appends `s` to `*out` as the body of a JSON string literal (without
/// the surrounding quotes): `"` and `\` are backslash-escaped, common
/// control characters use their short forms (\n, \t, \r, \b, \f), and
/// any other byte below 0x20 becomes \u00XX. Shared by every JSON
/// emitter (obs exporters, metrics registry) so labels and event fields
/// containing quotes/backslashes/newlines round-trip as valid JSON.
void AppendJsonEscaped(std::string* out, std::string_view s);

/// Returns the escaped body (AppendJsonEscaped into a fresh string).
std::string JsonEscape(std::string_view s);

}  // namespace digest

#endif  // DIGEST_COMMON_STRINGS_H_
