#include "common/strings.h"

#include <cctype>
#include <cstdio>

namespace digest {

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string> SplitAndTrim(std::string_view s, char delim) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    std::string_view piece = (pos == std::string_view::npos)
                                 ? s.substr(start)
                                 : s.substr(start, pos - start);
    pieces.emplace_back(StripWhitespace(piece));
    if (pos == std::string_view::npos) break;
    start = pos + 1;
  }
  return pieces;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(a[i])) !=
        std::toupper(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string ToUpperAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

void AppendJsonEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\b':
        out->append("\\b");
        break;
      case '\f':
        out->append("\\f");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  AppendJsonEscaped(&out, s);
  return out;
}

}  // namespace digest
