#include "common/json.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>

namespace digest {
namespace json {
namespace {

/// Hand-rolled recursive-descent parser over a string_view. Depth is
/// bounded so a pathological blob can't blow the stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Value> ParseDocument() {
    SkipWhitespace();
    DIGEST_ASSIGN_OR_RETURN(Value v, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after JSON document");
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Fail(const std::string& what) const {
    return Status::InvalidArgument("json: " + what + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  bool Consume(char c) {
    if (AtEnd() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Result<Value> ParseValue(int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    if (AtEnd()) return Fail("unexpected end of input");
    char c = Peek();
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        DIGEST_ASSIGN_OR_RETURN(std::string s, ParseString());
        return Value::MakeString(std::move(s));
      }
      case 't':
        if (ConsumeLiteral("true")) return Value::MakeBool(true);
        return Fail("invalid literal");
      case 'f':
        if (ConsumeLiteral("false")) return Value::MakeBool(false);
        return Fail("invalid literal");
      case 'n':
        if (ConsumeLiteral("null")) return Value::MakeNull();
        return Fail("invalid literal");
      default:
        return ParseNumber();
    }
  }

  Result<Value> ParseObject(int depth) {
    ++pos_;  // '{'
    std::vector<std::pair<std::string, Value>> members;
    SkipWhitespace();
    if (Consume('}')) return Value::MakeObject(std::move(members));
    while (true) {
      SkipWhitespace();
      if (AtEnd() || Peek() != '"') return Fail("expected object key");
      DIGEST_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Fail("expected ':' after object key");
      SkipWhitespace();
      DIGEST_ASSIGN_OR_RETURN(Value v, ParseValue(depth + 1));
      members.emplace_back(std::move(key), std::move(v));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Value::MakeObject(std::move(members));
      return Fail("expected ',' or '}' in object");
    }
  }

  Result<Value> ParseArray(int depth) {
    ++pos_;  // '['
    std::vector<Value> elems;
    SkipWhitespace();
    if (Consume(']')) return Value::MakeArray(std::move(elems));
    while (true) {
      SkipWhitespace();
      DIGEST_ASSIGN_OR_RETURN(Value v, ParseValue(depth + 1));
      elems.push_back(std::move(v));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Value::MakeArray(std::move(elems));
      return Fail("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // opening '"'
    std::string out;
    while (true) {
      if (AtEnd()) return Fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (AtEnd()) return Fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          DIGEST_ASSIGN_OR_RETURN(uint32_t cp, ParseHex4());
          // Surrogate pairs: our own writer never emits them (it only
          // \u-escapes control bytes), but accept them for validity.
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            if (!ConsumeLiteral("\\u")) return Fail("unpaired surrogate");
            DIGEST_ASSIGN_OR_RETURN(uint32_t lo, ParseHex4());
            if (lo < 0xDC00 || lo > 0xDFFF) return Fail("invalid surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Fail("unpaired surrogate");
          }
          AppendUtf8(&out, cp);
          break;
        }
        default:
          return Fail("invalid escape character");
      }
    }
  }

  Result<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Fail("invalid hex digit in \\u escape");
      }
    }
    return v;
  }

  static void AppendUtf8(std::string* out, uint32_t cp) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Result<Value> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {
      // sign consumed
    }
    if (AtEnd() || Peek() < '0' || Peek() > '9') {
      return Fail("invalid number");
    }
    if (Peek() == '0') {
      ++pos_;
    } else {
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    if (!AtEnd() && Peek() == '.') {
      ++pos_;
      if (AtEnd() || Peek() < '0' || Peek() > '9') {
        return Fail("digit required after decimal point");
      }
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (AtEnd() || Peek() < '0' || Peek() > '9') {
        return Fail("digit required in exponent");
      }
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    return Value::MakeNumber(std::string(text_.substr(start, pos_ - start)));
  }

  std::string_view text_;
  size_t pos_ = 0;
};

bool IsPlainInteger(const std::string& text, bool* negative) {
  if (text.empty()) return false;
  size_t i = 0;
  *negative = text[0] == '-';
  if (*negative) i = 1;
  if (i >= text.size()) return false;
  for (; i < text.size(); ++i) {
    if (text[i] < '0' || text[i] > '9') return false;
  }
  return true;
}

}  // namespace

Value Value::MakeBool(bool b) {
  Value v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

Value Value::MakeNumber(std::string text) {
  Value v;
  v.type_ = Type::kNumber;
  v.scalar_ = std::move(text);
  return v;
}

Value Value::MakeString(std::string s) {
  Value v;
  v.type_ = Type::kString;
  v.scalar_ = std::move(s);
  return v;
}

Value Value::MakeArray(std::vector<Value> elems) {
  Value v;
  v.type_ = Type::kArray;
  v.array_ = std::move(elems);
  return v;
}

Value Value::MakeObject(std::vector<std::pair<std::string, Value>> members) {
  Value v;
  v.type_ = Type::kObject;
  v.members_ = std::move(members);
  return v;
}

const Value* Value::Find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

Result<bool> Value::GetBool(std::string_view key) const {
  const Value* v = Find(key);
  if (v == nullptr || !v->is_bool()) {
    return Status::InvalidArgument("json: missing bool member '" +
                                   std::string(key) + "'");
  }
  return v->bool_value();
}

Result<double> Value::GetDouble(std::string_view key) const {
  const Value* v = Find(key);
  if (v == nullptr) {
    return Status::InvalidArgument("json: missing number member '" +
                                   std::string(key) + "'");
  }
  return v->AsDouble();
}

Result<int64_t> Value::GetInt64(std::string_view key) const {
  const Value* v = Find(key);
  if (v == nullptr) {
    return Status::InvalidArgument("json: missing number member '" +
                                   std::string(key) + "'");
  }
  return v->AsInt64();
}

Result<uint64_t> Value::GetUInt64(std::string_view key) const {
  const Value* v = Find(key);
  if (v == nullptr) {
    return Status::InvalidArgument("json: missing number member '" +
                                   std::string(key) + "'");
  }
  return v->AsUInt64();
}

Result<std::string> Value::GetString(std::string_view key) const {
  const Value* v = Find(key);
  if (v == nullptr || !v->is_string()) {
    return Status::InvalidArgument("json: missing string member '" +
                                   std::string(key) + "'");
  }
  return v->string_value();
}

Result<const Value*> Value::GetArray(std::string_view key) const {
  const Value* v = Find(key);
  if (v == nullptr || !v->is_array()) {
    return Status::InvalidArgument("json: missing array member '" +
                                   std::string(key) + "'");
  }
  return v;
}

Result<const Value*> Value::GetObject(std::string_view key) const {
  const Value* v = Find(key);
  if (v == nullptr || !v->is_object()) {
    return Status::InvalidArgument("json: missing object member '" +
                                   std::string(key) + "'");
  }
  return v;
}

Result<double> Value::AsDouble() const {
  // uint64 round-trips ride in strings (see header); accept both forms.
  if (type_ != Type::kNumber && type_ != Type::kString) {
    return Status::InvalidArgument("json: value is not a number");
  }
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(scalar_.c_str(), &end);
  if (end != scalar_.c_str() + scalar_.size() || scalar_.empty()) {
    return Status::InvalidArgument("json: unparsable number '" + scalar_ +
                                   "'");
  }
  // Range errors are refusals, not silent clamps: overflow would
  // round-trip a checkpoint literal into ±inf, and full underflow
  // would flush a too-small literal (e.g. "1e-999") to 0 without a
  // trace. Denormal results are exempt — strtod flags them ERANGE on
  // some libcs, but e.g. "5e-324" IS exactly representable and the
  // checkpoint writer legitimately produces such text.
  if (errno == ERANGE &&
      (v == std::numeric_limits<double>::infinity() ||
       v == -std::numeric_limits<double>::infinity() || v == 0.0)) {
    return Status::InvalidArgument("json: number out of double range");
  }
  // The string form reaches strtod directly, which accepts "inf"/"nan"
  // spellings no JSON writer produces; neither is usable as a number.
  if (!std::isfinite(v)) {
    return Status::InvalidArgument("json: number is not finite");
  }
  return v;
}

Result<int64_t> Value::AsInt64() const {
  if (type_ != Type::kNumber && type_ != Type::kString) {
    return Status::InvalidArgument("json: value is not a number");
  }
  bool negative = false;
  if (!IsPlainInteger(scalar_, &negative)) {
    return Status::InvalidArgument("json: '" + scalar_ +
                                   "' is not a plain integer");
  }
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(scalar_.c_str(), &end, 10);
  if (errno == ERANGE || end != scalar_.c_str() + scalar_.size()) {
    return Status::InvalidArgument("json: integer out of int64 range");
  }
  return static_cast<int64_t>(v);
}

Result<uint64_t> Value::AsUInt64() const {
  if (type_ != Type::kNumber && type_ != Type::kString) {
    return Status::InvalidArgument("json: value is not a number");
  }
  bool negative = false;
  if (!IsPlainInteger(scalar_, &negative) || negative) {
    return Status::InvalidArgument("json: '" + scalar_ +
                                   "' is not a non-negative integer");
  }
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(scalar_.c_str(), &end, 10);
  if (errno == ERANGE || end != scalar_.c_str() + scalar_.size()) {
    return Status::InvalidArgument("json: integer out of uint64 range");
  }
  return static_cast<uint64_t>(v);
}

Result<Value> Parse(std::string_view text) {
  Parser parser(text);
  return parser.ParseDocument();
}

}  // namespace json
}  // namespace digest
