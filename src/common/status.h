#ifndef DIGEST_COMMON_STATUS_H_
#define DIGEST_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace digest {

/// Machine-readable category of a failure.
///
/// The set is deliberately small; the human-readable message carries the
/// detail. Codes are stable so callers may branch on them.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,   ///< Caller passed a value outside the contract.
  kOutOfRange = 2,        ///< Index/time outside the valid range.
  kNotFound = 3,          ///< Referenced entity does not exist.
  kAlreadyExists = 4,     ///< Entity with the same identity already exists.
  kFailedPrecondition = 5,///< Object is not in a state that allows the call.
  kUnavailable = 6,       ///< Transient inability (e.g., node left network).
  kParseError = 7,        ///< Query/expression text could not be parsed.
  kNumericError = 8,      ///< Numerical routine failed to converge/solve.
  kInternal = 9,          ///< Invariant violation inside the library.
};

/// Returns the canonical lower-case name of a status code ("ok",
/// "invalid-argument", ...).
const char* StatusCodeToString(StatusCode code);

/// Outcome of an operation that can fail, in the Arrow/RocksDB style.
///
/// The library does not throw exceptions across its public API; every
/// fallible operation returns a Status (or a Result<T>, see result.h).
/// A default-constructed Status is OK and carries no allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message. Prefer the named
  /// factories (Status::InvalidArgument etc.) at call sites.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Named factory helpers, one per non-OK code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NumericError(std::string msg) {
    return Status(StatusCode::kNumericError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  /// True iff the status is OK.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The status code.
  StatusCode code() const { return code_; }

  /// The human-readable message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// "ok" or "<code-name>: <message>".
  std::string ToString() const;

  /// Two statuses are equal iff code and message are equal.
  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Evaluates `expr` (a Status expression); on failure, returns it from the
/// enclosing function. Library-internal convenience.
#define DIGEST_RETURN_IF_ERROR(expr)                \
  do {                                              \
    ::digest::Status _digest_status = (expr);       \
    if (!_digest_status.ok()) return _digest_status;\
  } while (false)

}  // namespace digest

#endif  // DIGEST_COMMON_STATUS_H_
