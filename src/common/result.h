#ifndef DIGEST_COMMON_RESULT_H_
#define DIGEST_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace digest {

/// A value-or-Status discriminated union, in the Arrow style.
///
/// A Result<T> holds either a T (success) or a non-OK Status (failure).
/// Constructing a Result from an OK Status is a programming error and is
/// converted into an internal-error Result so the bug surfaces at the call
/// site instead of crashing.
///
/// Typical use:
///
///   Result<Polynomial> fit = FitPolynomial(xs, ys, degree);
///   if (!fit.ok()) return fit.status();
///   UsePolynomial(*fit);
template <typename T>
class Result {
 public:
  /// Constructs a failed Result. `status` must not be OK.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : repr_(std::move(status)) {
    if (std::get<Status>(repr_).ok()) {
      repr_ = Status::Internal("Result constructed from OK status");
    }
  }

  /// Constructs a successful Result holding `value`.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : repr_(std::move(value)) {}

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  /// True iff this Result holds a value.
  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The failure Status; Status::OK() when this Result holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// Access to the held value. Must only be called when ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  /// Returns the held value, or `fallback` when this Result is a failure.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(repr_) : std::move(fallback);
  }

  /// Pointer-style accessors, valid only when ok().
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> repr_;
};

/// Evaluates `rexpr` (a Result<T> expression); on failure returns its
/// Status from the enclosing function, otherwise assigns the value to
/// `lhs` (which must be a declaration or assignable lvalue).
#define DIGEST_ASSIGN_OR_RETURN(lhs, rexpr)                     \
  DIGEST_ASSIGN_OR_RETURN_IMPL_(                                \
      DIGEST_CONCAT_(_digest_result, __LINE__), lhs, rexpr)

#define DIGEST_CONCAT_INNER_(a, b) a##b
#define DIGEST_CONCAT_(a, b) DIGEST_CONCAT_INNER_(a, b)
#define DIGEST_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()

}  // namespace digest

#endif  // DIGEST_COMMON_RESULT_H_
