#!/usr/bin/env python3
"""Render the sampler-introspection diagnostics of a traced run.

Reads the JSON Lines event trace a `bench_* --diag --trace-jsonl=F`
run writes and collects the four per-walk-batch diagnostic events
(src/diag/, docs/OBSERVABILITY.md "Sampler diagnostics"):

    walk_mixing      lag-1 autocorrelation, effective sample size,
                     cross-walk R-hat
    stationary_gap   total-variation distance and chi-square of the
                     per-peer visit histogram against the
                     degree-corrected stationary target
    peer_load        per-peer/per-link message load and hot-peer
                     detection
    acceptance_rate  Metropolis proposal/accept counters

The four events are emitted together, once per batch, in that order,
so rows are matched by index. Two tables are printed: the mixing
table (one row per batch: walks, steps, lag-1, ESS, R-hat, TV
distance, chi-square, acceptance rate, breach flag) and the hot-peer
table (only the batches whose max per-peer load exceeded the hot
threshold), followed by a one-line summary.

With --gate, the script exits 1 when more than --max-breach-frac of
the batches breached the stationary-gap threshold — a coarse CI
tripwire for a sampler whose walks stopped mixing.

Stdlib only. Exit status: 0 = tables rendered (and gate passed, if
requested); 1 = gate breach, malformed trace, mismatched event
streams, or no diagnostic events found.
"""

import argparse
import sys

from trace_schema import load_jsonl_events

DIAG_EVENTS = ("walk_mixing", "stationary_gap", "peer_load",
               "acceptance_rate")


def collect_batches(path):
    """Returns one dict per batch, merging the four per-batch events
    matched by emission index. Raises ValueError when the trace is
    malformed or the four streams disagree in length."""
    streams = {name: [] for name in DIAG_EVENTS}
    for obj in load_jsonl_events(path, set(DIAG_EVENTS)):
        streams[obj["event"]].append(obj)
    lengths = {name: len(events) for name, events in streams.items()}
    if len(set(lengths.values())) != 1:
        raise ValueError(
            f"{path}: diagnostic event streams disagree in length "
            f"({lengths}); trace is truncated or interleaved")
    batches = []
    for mixing, gap, load, acc in zip(*(streams[n] for n in DIAG_EVENTS)):
        batches.append({"mixing": mixing, "gap": gap, "load": load,
                        "acc": acc})
    return batches


def format_table(headers, rows):
    widths = [len(h) for h in headers]
    for row in rows:
        for c, cell in enumerate(row):
            widths[c] = max(widths[c], len(cell))
    lines = ["  ".join(h.ljust(widths[c])
                       for c, h in enumerate(headers)).rstrip()]
    lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[c])
                               for c, cell in enumerate(row)).rstrip())
    return "\n".join(lines)


def mixing_table(batches):
    headers = ["batch", "walks", "steps", "lag1", "ess", "rhat", "tv",
               "chi2", "accept", "breach"]
    rows = []
    for i, b in enumerate(batches):
        mixing, gap, acc = b["mixing"], b["gap"], b["acc"]
        rows.append([
            str(i),
            str(mixing["walks"]),
            str(mixing["steps"]),
            f"{mixing['lag1_autocorr']:.3f}",
            f"{mixing['ess']:.1f}",
            f"{mixing['rhat']:.3f}" if mixing["rhat"] > 0 else "-",
            f"{gap['tv_distance']:.4f}",
            f"{gap['chi_square']:.1f}",
            f"{acc['rate']:.3f}",
            "BREACH" if gap["breach"] else "",
        ])
    return format_table(headers, rows)


def hot_peer_table(batches):
    headers = ["batch", "peers", "links", "hot_peer", "max_load",
               "mean_load", "ratio"]
    rows = []
    for i, b in enumerate(batches):
        load = b["load"]
        if not load["hot"]:
            continue
        mean = load["mean_load"]
        ratio = load["max_load"] / mean if mean > 0 else float("inf")
        rows.append([
            str(i),
            str(load["peers"]),
            str(load["links"]),
            str(load["hot_peer"]),
            str(load["max_load"]),
            f"{mean:.2f}",
            f"{ratio:.2f}x",
        ])
    if not rows:
        return "(no hot peers: every batch's max load stayed under the " \
               "hot threshold)"
    return format_table(headers, rows)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jsonl", required=True,
                        help="JSON Lines trace of a --diag run")
    parser.add_argument("--gate", action="store_true",
                        help="exit 1 when the stationary-gap breach "
                             "fraction exceeds --max-breach-frac")
    parser.add_argument("--max-breach-frac", type=float, default=0.5,
                        help="allowed fraction of breached batches under "
                             "--gate (default 0.5)")
    args = parser.parse_args()

    try:
        batches = collect_batches(args.jsonl)
    except (OSError, ValueError) as e:
        print(f"FAIL: {e}", file=sys.stderr)
        return 1
    if not batches:
        print(f"FAIL: {args.jsonl}: no sampler-diagnostic events (was "
              f"the run started with --diag?)", file=sys.stderr)
        return 1

    print(f"== sampler diagnostics ({len(batches)} walk batch(es) in "
          f"{args.jsonl}) ==")
    print(mixing_table(batches))
    print(f"\n== hot peers ==")
    print(hot_peer_table(batches))

    breaches = sum(1 for b in batches if b["gap"]["breach"])
    hot = sum(1 for b in batches if b["load"]["hot"])
    proposals = sum(b["acc"]["proposals"] for b in batches)
    accepted = sum(b["acc"]["accepted"] for b in batches)
    rate = accepted / proposals if proposals > 0 else 0.0
    frac = breaches / len(batches)
    print(f"\nsummary: {len(batches)} batches, "
          f"{breaches} stationary-gap breach(es) ({frac:.1%}), "
          f"{hot} hot batch(es), overall acceptance {rate:.3f} "
          f"({accepted}/{proposals})")

    if not args.gate:
        return 0
    if frac > args.max_breach_frac:
        print(f"\nGATE FAIL: breach fraction {frac:.1%} exceeds "
              f"{args.max_breach_frac:.1%} — sampler is not mixing "
              f"toward its stationary target", file=sys.stderr)
        return 1
    print(f"\ngate OK: breach fraction {frac:.1%} within "
          f"{args.max_breach_frac:.1%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
