#!/usr/bin/env python3
"""Validate Digest observability exports.

Checks the three file formats the obs layer writes (see
docs/OBSERVABILITY.md):

  * --jsonl   : JSON Lines event trace (one object per line)
  * --chrome  : Chrome trace_event JSON (Perfetto-loadable)
  * --metrics : metrics registry dump (JSON)

All three formats may additionally carry the wall-clock profiling
sections a `--prof` run appends (trailing `prof_phase` JSONL lines, the
"wall-clock profiler" Chrome process, the metrics `prof` object); those
are validated too — schema plus monotonicity of the wall timestamps.

Stdlib only; exit status 0 iff every supplied file validates. Used by CI
on a traced bench run, and handy locally after `bench_* --trace=...`.
"""

import argparse
import json
import sys

from trace_schema import (EVENT_SCHEMA, LANE_EVENTS, NESTED_SLICE_EVENTS,
                          PROF_PHASES, PROF_STAT_FIELDS,
                          QUERY_LANE_EVENTS, TICK_SPAN_US,
                          WALL_PROCESS_NAME)


class Failure(Exception):
    pass


def check_prof_stats(where, stats):
    """Validates one phase's aggregate counters (shared by the JSONL
    prof_phase lines and the metrics `prof.phases` objects)."""
    for field in PROF_STAT_FIELDS:
        if field not in stats:
            raise Failure(f"{where}: missing '{field}'")
        v = stats[field]
        if not isinstance(v, int) or v < 0:
            raise Failure(f"{where}: '{field}' not a non-negative integer")
    if stats["min_ns"] > stats["max_ns"]:
        raise Failure(f"{where}: min_ns > max_ns")
    if stats["calls"] > 0 and stats["total_ns"] < stats["max_ns"]:
        raise Failure(f"{where}: total_ns < max_ns")


def check_jsonl(path):
    prev_seq = -1
    prev_t = None
    counts = {}
    prof_phases = set()
    with open(path, "r", encoding="utf-8") as f:
        for line_no, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                raise Failure(f"{path}:{line_no}: blank line")
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as e:
                raise Failure(f"{path}:{line_no}: invalid JSON: {e}")
            if obj.get("event") == "prof_phase":
                # Wall-clock aggregates, appended after every sim event;
                # no seq/t stamps (they are not simulation events).
                if obj.keys() - PROF_STAT_FIELDS != {"event", "phase"}:
                    raise Failure(
                        f"{path}:{line_no}: prof_phase has unexpected "
                        f"fields "
                        f"{sorted(obj.keys() - PROF_STAT_FIELDS - {'event', 'phase'})}")
                if obj.get("phase") not in PROF_PHASES:
                    raise Failure(f"{path}:{line_no}: unknown prof phase "
                                  f"'{obj.get('phase')}'")
                if obj["phase"] in prof_phases:
                    raise Failure(f"{path}:{line_no}: duplicate prof_phase "
                                  f"'{obj['phase']}'")
                prof_phases.add(obj["phase"])
                check_prof_stats(f"{path}:{line_no}: prof_phase", obj)
                counts["prof_phase"] = counts.get("prof_phase", 0) + 1
                continue
            if prof_phases:
                raise Failure(
                    f"{path}:{line_no}: simulation event "
                    f"'{obj.get('event')}' after prof_phase lines "
                    f"(the prof section must trail the trace)")
            for field in ("seq", "t", "event"):
                if field not in obj:
                    raise Failure(f"{path}:{line_no}: missing '{field}'")
            name = obj["event"]
            if name not in EVENT_SCHEMA:
                raise Failure(f"{path}:{line_no}: unknown event '{name}'")
            missing = EVENT_SCHEMA[name] - obj.keys()
            if missing:
                raise Failure(
                    f"{path}:{line_no}: event '{name}' missing fields "
                    f"{sorted(missing)}")
            extra = obj.keys() - EVENT_SCHEMA[name] - {"seq", "t", "event"}
            if "lane" in extra and name in LANE_EVENTS:
                # Walk lane stamped by the parallel executor.
                extra.discard("lane")
                lane = obj["lane"]
                if not isinstance(lane, int) or lane < 0:
                    raise Failure(
                        f"{path}:{line_no}: event '{name}' lane must be a "
                        f"non-negative walk index, got {lane!r}")
            elif "lane" in extra and name in QUERY_LANE_EVENTS:
                # Query lane stamped by a DigestNode's per-tenant
                # LaneTracer; QueryIds start at 1.
                extra.discard("lane")
                lane = obj["lane"]
                if not isinstance(lane, int) or lane < 1:
                    raise Failure(
                        f"{path}:{line_no}: event '{name}' lane must be a "
                        f"positive QueryId, got {lane!r}")
            if extra:
                raise Failure(
                    f"{path}:{line_no}: event '{name}' has unexpected "
                    f"fields {sorted(extra)}")
            if obj["seq"] != prev_seq + 1:
                raise Failure(
                    f"{path}:{line_no}: seq {obj['seq']} not contiguous "
                    f"after {prev_seq}")
            prev_seq = obj["seq"]
            if prev_t is not None and obj["t"] < prev_t and \
                    name != "run_begin":
                # Time restarts only at a new run's marker.
                raise Failure(
                    f"{path}:{line_no}: sim time went backwards "
                    f"({prev_t} -> {obj['t']}) without a run_begin")
            prev_t = obj["t"]
            counts[name] = counts.get(name, 0) + 1
    if prev_seq < 0:
        raise Failure(f"{path}: no events")
    if counts.get("tick", 0) == 0:
        raise Failure(f"{path}: trace has no tick events")
    return counts


def check_chrome(path):
    with open(path, "r", encoding="utf-8") as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            raise Failure(f"{path}: invalid JSON: {e}")
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise Failure(f"{path}: missing traceEvents (object format "
                      f"required)")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        raise Failure(f"{path}: traceEvents empty")

    # First pass: map pids to process names so the wall-clock profiler
    # track can be told apart from the simulated-run tracks.
    wall_pids = set()
    for i, ev in enumerate(events):
        if not isinstance(ev, dict) or "ph" not in ev:
            raise Failure(f"{path}: traceEvents[{i}] malformed")
        if ev["ph"] == "M" and \
                ev.get("args", {}).get("name") == WALL_PROCESS_NAME:
            wall_pids.add(ev["pid"])

    tick_spans = {}  # pid -> set of span start ts
    named_pids = set()
    nested = []
    prev_wall_ts = {}  # wall pid -> last span start ts
    stats = {"ticks": 0, "nested": 0, "instants": 0, "processes": 0,
             "wall_spans": 0}
    for i, ev in enumerate(events):
        ph = ev["ph"]
        if ph == "M":
            if ev.get("name") != "process_name":
                raise Failure(f"{path}: traceEvents[{i}] unexpected "
                              f"metadata '{ev.get('name')}'")
            if not ev.get("args", {}).get("name"):
                raise Failure(f"{path}: traceEvents[{i}] process_name "
                              f"metadata without a name")
            named_pids.add(ev["pid"])
            stats["processes"] += 1
            continue
        if ev.get("pid") in wall_pids:
            # The wall track: real-time complete spans, sorted by start,
            # phase names from the prof layer, cat "wall".
            for field in ("name", "ts", "dur", "args"):
                if field not in ev:
                    raise Failure(
                        f"{path}: traceEvents[{i}] wall span missing "
                        f"'{field}'")
            if ph != "X" or ev.get("cat") != "wall":
                raise Failure(f"{path}: traceEvents[{i}] wall-track event "
                              f"must be a ph=X cat=wall span")
            if ev["name"] not in PROF_PHASES:
                raise Failure(f"{path}: traceEvents[{i}] unknown wall "
                              f"phase '{ev['name']}'")
            if ev["ts"] < prev_wall_ts.get(ev["pid"], 0):
                raise Failure(
                    f"{path}: traceEvents[{i}] wall timestamps not "
                    f"monotone ({prev_wall_ts[ev['pid']]} -> {ev['ts']})")
            prev_wall_ts[ev["pid"]] = ev["ts"]
            if ev["dur"] < 0 or "dur_ns" not in ev["args"] or \
                    "items" not in ev["args"]:
                raise Failure(f"{path}: traceEvents[{i}] wall span args "
                              f"lack dur_ns/items")
            stats["wall_spans"] += 1
            continue
        for field in ("name", "pid", "tid", "ts", "args"):
            if field not in ev:
                raise Failure(
                    f"{path}: traceEvents[{i}] missing '{field}'")
        if ev["name"] not in EVENT_SCHEMA or ev["name"] == "run_begin":
            raise Failure(f"{path}: traceEvents[{i}] unknown event "
                          f"'{ev['name']}'")
        if "seq" not in ev["args"]:
            raise Failure(f"{path}: traceEvents[{i}] args lack seq")
        if "lane" in ev["args"]:
            lane = ev["args"]["lane"]
            if ev["name"] in LANE_EVENTS:
                if not isinstance(lane, int) or lane < 0:
                    raise Failure(f"{path}: traceEvents[{i}] lane must be "
                                  f"a non-negative walk index, got "
                                  f"{lane!r}")
            elif ev["name"] in QUERY_LANE_EVENTS:
                if not isinstance(lane, int) or lane < 1:
                    raise Failure(f"{path}: traceEvents[{i}] lane must be "
                                  f"a positive QueryId, got {lane!r}")
            else:
                raise Failure(f"{path}: traceEvents[{i}] '{ev['name']}' "
                              f"must not carry a lane")
        if ph == "X" and ev["name"] == "tick":
            if ev.get("dur") != TICK_SPAN_US:
                raise Failure(f"{path}: traceEvents[{i}] tick span "
                              f"dur={ev.get('dur')} != {TICK_SPAN_US}")
            if ev["ts"] % TICK_SPAN_US != 0:
                raise Failure(f"{path}: traceEvents[{i}] tick span ts "
                              f"{ev['ts']} not tick-aligned")
            tick_spans.setdefault(ev["pid"], set()).add(ev["ts"])
            stats["ticks"] += 1
        elif ph == "X":
            if ev["name"] not in NESTED_SLICE_EVENTS:
                raise Failure(f"{path}: traceEvents[{i}] span event "
                              f"'{ev['name']}' should be an instant")
            nested.append((i, ev))
            stats["nested"] += 1
        elif ph == "i":
            stats["instants"] += 1
        else:
            raise Failure(f"{path}: traceEvents[{i}] unexpected phase "
                          f"'{ph}'")

    for i, ev in nested:
        start = (ev["ts"] // TICK_SPAN_US) * TICK_SPAN_US
        end = ev["ts"] + ev.get("dur", 0)
        if ev["ts"] == start or end > start + TICK_SPAN_US:
            raise Failure(
                f"{path}: traceEvents[{i}] '{ev['name']}' slice "
                f"[{ev['ts']}, {end}) not strictly inside its tick span "
                f"[{start}, {start + TICK_SPAN_US})")
        if ev["pid"] in tick_spans and start not in tick_spans[ev["pid"]]:
            raise Failure(
                f"{path}: traceEvents[{i}] '{ev['name']}' at ts="
                f"{ev['ts']} has no owning tick span in pid {ev['pid']}")
    if stats["ticks"] == 0:
        raise Failure(f"{path}: no tick spans")
    return stats


def check_metrics(path):
    with open(path, "r", encoding="utf-8") as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            raise Failure(f"{path}: invalid JSON: {e}")
    for section in ("counters", "gauges", "histograms"):
        if section not in doc:
            raise Failure(f"{path}: missing '{section}' section")
        if not isinstance(doc[section], dict):
            raise Failure(f"{path}: '{section}' is not an object")
    for key, value in doc["counters"].items():
        if not isinstance(value, int) or value < 0:
            raise Failure(f"{path}: counter '{key}' not a non-negative "
                          f"integer")
    for key, hist in doc["histograms"].items():
        for field in ("count", "sum", "bounds", "counts"):
            if field not in hist:
                raise Failure(
                    f"{path}: histogram '{key}' missing '{field}'")
        if len(hist["counts"]) != len(hist["bounds"]) + 1:
            raise Failure(
                f"{path}: histogram '{key}' needs len(bounds)+1 counts "
                f"(overflow bucket)")
        if sum(hist["counts"]) != hist["count"]:
            raise Failure(
                f"{path}: histogram '{key}' bucket counts do not sum to "
                f"count")
    if not doc["counters"] and not doc["gauges"] and not doc["histograms"]:
        raise Failure(f"{path}: registry is empty")
    sizes = {s: len(doc[s]) for s in ("counters", "gauges", "histograms")}
    sizes["prof_phases"] = 0
    if "prof" in doc:
        prof = doc["prof"]
        for field in ("phases", "spans_captured", "spans_dropped"):
            if field not in prof:
                raise Failure(f"{path}: prof section missing '{field}'")
        for field in ("spans_captured", "spans_dropped"):
            if not isinstance(prof[field], int) or prof[field] < 0:
                raise Failure(f"{path}: prof '{field}' not a non-negative "
                              f"integer")
        if not isinstance(prof["phases"], dict):
            raise Failure(f"{path}: prof 'phases' is not an object")
        for phase, stats in prof["phases"].items():
            if phase not in PROF_PHASES:
                raise Failure(f"{path}: unknown prof phase '{phase}'")
            check_prof_stats(f"{path}: prof phase '{phase}'", stats)
        sizes["prof_phases"] = len(prof["phases"])
    return sizes


def check_bench_prof(path):
    """Validates the `prof` object of a BENCH_*.json, including the
    optional per-worker `tracks` section the parallel executor folds in:
    worker ids dense and ascending, every track's phase stats
    well-formed, and no track claiming more deterministic work (calls,
    items) than the main aggregate it was folded into."""
    with open(path, "r", encoding="utf-8") as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            raise Failure(f"{path}: invalid JSON: {e}")
    if "prof" not in doc:
        raise Failure(f"{path}: no 'prof' section")
    prof = doc["prof"]
    for field in ("phases", "spans_captured", "spans_dropped"):
        if field not in prof:
            raise Failure(f"{path}: prof section missing '{field}'")
    for phase, stats in prof["phases"].items():
        if phase not in PROF_PHASES:
            raise Failure(f"{path}: unknown prof phase '{phase}'")
        check_prof_stats(f"{path}: prof phase '{phase}'", stats)
    tracks = prof.get("tracks", [])
    if not isinstance(tracks, list):
        raise Failure(f"{path}: prof 'tracks' is not an array")
    for i, track in enumerate(tracks):
        where = f"{path}: prof track [{i}]"
        for field in ("worker", "phases"):
            if field not in track:
                raise Failure(f"{where}: missing '{field}'")
        if track["worker"] != i:
            raise Failure(f"{where}: worker id {track['worker']} != {i} "
                          f"(tracks must be dense and ascending)")
        for phase, stats in track["phases"].items():
            if phase not in PROF_PHASES:
                raise Failure(f"{where}: unknown prof phase '{phase}'")
            check_prof_stats(f"{where}: phase '{phase}'", stats)
    # Per-worker deterministic work never exceeds the folded aggregate.
    for counter in ("calls", "items"):
        per_phase = {}
        for track in tracks:
            for phase, stats in track["phases"].items():
                per_phase[phase] = per_phase.get(phase, 0) + stats[counter]
        for phase, total in per_phase.items():
            main = prof["phases"].get(phase, {}).get(counter, 0)
            if total > main:
                raise Failure(
                    f"{path}: prof tracks claim {total} {counter} for "
                    f"'{phase}' but the main aggregate has only {main}")
    return {"phases": len(prof["phases"]), "tracks": len(tracks)}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jsonl", help="JSON Lines event trace")
    parser.add_argument("--chrome", help="Chrome trace_event JSON")
    parser.add_argument("--metrics", help="metrics registry JSON")
    parser.add_argument("--bench-prof",
                        help="BENCH_*.json whose prof section (and "
                             "per-worker tracks) to validate")
    args = parser.parse_args()
    if not (args.jsonl or args.chrome or args.metrics or args.bench_prof):
        parser.error("supply at least one of "
                     "--jsonl/--chrome/--metrics/--bench-prof")
    try:
        if args.jsonl:
            counts = check_jsonl(args.jsonl)
            total = sum(counts.values())
            print(f"OK {args.jsonl}: {total} events "
                  f"({counts.get('tick', 0)} ticks, "
                  f"{counts.get('walk_batch', 0)} walk batches, "
                  f"{counts.get('prof_phase', 0)} prof phases, "
                  f"{len(counts)} distinct types)")
        if args.chrome:
            stats = check_chrome(args.chrome)
            print(f"OK {args.chrome}: {stats['processes']} processes, "
                  f"{stats['ticks']} tick spans, {stats['nested']} nested "
                  f"slices, {stats['instants']} instants, "
                  f"{stats['wall_spans']} wall spans")
        if args.metrics:
            sizes = check_metrics(args.metrics)
            print(f"OK {args.metrics}: {sizes['counters']} counters, "
                  f"{sizes['gauges']} gauges, {sizes['histograms']} "
                  f"histograms, {sizes['prof_phases']} prof phases")
        if args.bench_prof:
            sizes = check_bench_prof(args.bench_prof)
            print(f"OK {args.bench_prof}: {sizes['phases']} prof phases, "
                  f"{sizes['tracks']} worker tracks")
    except Failure as e:
        print(f"FAIL: {e}", file=sys.stderr)
        return 1
    except OSError as e:
        print(f"FAIL: {e}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
