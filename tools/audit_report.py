#!/usr/bin/env python3
"""Render and gate the precision-audit SLO ledger of a traced run.

Reads the JSON Lines event trace a `bench_* --audit --trace-jsonl=F`
run writes, collects the `audit_slo` summary event each audited run
emits at FinalizeRun (src/audit/), and prints one SLO table row per
run: sampling occasions, empirical (eps, p) coverage against the
binomial floor, delta-compliance of the extrapolated (skipped-
snapshot) answers, and the error-budget burn rate.

With --gate, the coverage gate is recomputed here from first
principles rather than trusted from the binary: a run passes iff

    coverage >= p - 2 * sqrt(p * (1 - p) / occasions)

(two binomial standard errors of slack below the contracted
confidence; runs with zero truth-resolved occasions pass vacuously).
Any failing run makes the script exit 1 — this is the CI accuracy
gate for audited bench runs. The recomputed verdict is also cross-
checked against the `coverage_ok` flag the binary embedded; a
disagreement is reported as corruption and fails the gate.

Stdlib only. Exit status: 0 = table rendered (and gate passed, if
requested); 1 = gate breach, cross-check mismatch, or no audit_slo
events found.
"""

import argparse
import math
import sys

from trace_schema import load_jsonl_events


def load_slo_events(path):
    """Returns the list of audit_slo payload objects in the trace, in
    emission order. Raises ValueError on malformed JSONL."""
    return load_jsonl_events(path, {"audit_slo"})


def coverage_floor(p, occasions):
    """The gate threshold: p minus two binomial standard errors."""
    if occasions == 0:
        return 0.0
    return p - 2.0 * math.sqrt(p * (1.0 - p) / occasions)


def gate_run(slo):
    """Recomputes the coverage gate for one audit_slo event. Returns
    (passed, floor, problems) where problems lists any disagreement
    with the flags the binary embedded."""
    problems = []
    occasions = slo["occasions"]
    floor = coverage_floor(slo["p"], occasions)
    passed = occasions == 0 or slo["coverage"] >= floor
    if abs(floor - slo["coverage_floor"]) > 1e-9:
        problems.append(
            f"embedded coverage_floor {slo['coverage_floor']:.6f} != "
            f"recomputed {floor:.6f}")
    if passed != slo["coverage_ok"]:
        problems.append(
            f"embedded coverage_ok {slo['coverage_ok']} != recomputed "
            f"{passed}")
    if occasions > 0:
        expected = slo["hits"] / occasions
        if abs(expected - slo["coverage"]) > 1e-9:
            problems.append(
                f"coverage {slo['coverage']:.6f} != hits/occasions "
                f"{expected:.6f}")
    return passed, floor, problems


def render_table(events):
    headers = ["run", "occ", "coverage", "floor", "ok", "d-comp", "burn"]
    rows = []
    for slo in events:
        rows.append([
            slo["label"] or "(unlabelled)",
            str(slo["occasions"]),
            f"{slo['coverage']:.4f}",
            f"{slo['coverage_floor']:.4f}",
            "yes" if slo["coverage_ok"] else "NO",
            f"{slo['delta_compliance']:.4f}",
            f"{slo['budget_burn']:.3f}",
        ])
    widths = [len(h) for h in headers]
    for row in rows:
        for c, cell in enumerate(row):
            widths[c] = max(widths[c], len(cell))
    lines = ["  ".join(h.ljust(widths[c])
                       for c, h in enumerate(headers)).rstrip()]
    lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[c])
                               for c, cell in enumerate(row)).rstrip())
    return "\n".join(lines)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jsonl", required=True,
                        help="JSON Lines trace of an --audit run")
    parser.add_argument("--gate", action="store_true",
                        help="recompute the coverage gate and exit 1 on "
                             "any breach")
    args = parser.parse_args()

    try:
        events = load_slo_events(args.jsonl)
    except (OSError, ValueError) as e:
        print(f"FAIL: {e}", file=sys.stderr)
        return 1
    if not events:
        print(f"FAIL: {args.jsonl}: no audit_slo events (was the run "
              f"started with --audit?)", file=sys.stderr)
        return 1

    print(f"== audit SLO ({len(events)} run(s) in {args.jsonl}) ==")
    print(render_table(events))

    if not args.gate:
        return 0
    failures = []
    for slo in events:
        passed, floor, problems = gate_run(slo)
        for problem in problems:
            failures.append(f"run '{slo['label']}': {problem}")
        if not passed:
            failures.append(
                f"run '{slo['label']}': coverage {slo['coverage']:.4f} "
                f"below floor {floor:.4f} "
                f"(p={slo['p']}, occasions={slo['occasions']})")
    if failures:
        print(f"\nGATE FAIL ({len(failures)} problem(s)):",
              file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\ngate OK: all {len(events)} run(s) meet "
          f"coverage >= p - 2*stderr")
    return 0


if __name__ == "__main__":
    sys.exit(main())
