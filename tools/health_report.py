#!/usr/bin/env python3
"""Render the peer-health picture of a traced run.

Reads the JSON Lines event trace a `bench_* --health --trace-jsonl=F`
run writes and collects the peer-health events (src/net/peer_health,
src/net/fault_plan; docs/OBSERVABILITY.md "Peer health & partitions"):

    peer_suspect        phi crossed the suspect threshold for a peer
                        (once per suspicion excursion)
    breaker_transition  a per-peer circuit breaker moved between
                        closed / open / half_open
    partition_begin     a seeded partition episode split the overlay
    partition_end       the episode healed

Two tables are printed: the per-peer breaker table (suspects, opens,
re-opens, closes, and the final state reconstructed by replaying the
transitions) and the partition-episode table (episode id, component
count, window length). A one-line summary follows.

With --gate, the script exits 1 when the flap rate — re-opens per
breaker opening (opens + re-opens) — exceeds --max-flap-rate: a
breaker population that keeps bouncing between open and half-open is
quarantining on noise, not on real peer failure.

Stdlib only. Exit status: 0 = tables rendered (and gate passed, if
requested); 1 = gate breach, malformed trace, or no peer-health
events found.
"""

import argparse
import sys

from trace_schema import load_jsonl_events

HEALTH_EVENTS = ("peer_suspect", "breaker_transition", "partition_begin",
                 "partition_end")


def collect(path):
    """Splits the four event streams, preserving emission order."""
    streams = {name: [] for name in HEALTH_EVENTS}
    for obj in load_jsonl_events(path, set(HEALTH_EVENTS)):
        streams[obj["event"]].append(obj)
    return streams


def format_table(headers, rows):
    widths = [len(h) for h in headers]
    for row in rows:
        for c, cell in enumerate(row):
            widths[c] = max(widths[c], len(cell))
    lines = ["  ".join(h.ljust(widths[c])
                       for c, h in enumerate(headers)).rstrip()]
    lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[c])
                               for c, cell in enumerate(row)).rstrip())
    return "\n".join(lines)


def per_peer(streams):
    """Folds the suspect/transition streams into one record per peer."""
    peers = {}

    def rec(peer):
        return peers.setdefault(peer, {
            "suspects": 0, "opens": 0, "reopens": 0, "closes": 0,
            "state": "closed", "max_phi": 0.0,
        })

    for e in streams["peer_suspect"]:
        r = rec(e["peer"])
        r["suspects"] += 1
        r["max_phi"] = max(r["max_phi"], e["phi"])
    for e in streams["breaker_transition"]:
        r = rec(e["peer"])
        r["max_phi"] = max(r["max_phi"], e["phi"])
        if e["to"] == "open":
            if e["from"] == "half_open":
                r["reopens"] += 1
            else:
                r["opens"] += 1
        elif e["to"] == "closed":
            r["closes"] += 1
        r["state"] = e["to"]
    return peers


def breaker_table(peers):
    headers = ["peer", "suspects", "opens", "reopens", "closes",
               "max_phi", "final"]
    rows = []
    for peer in sorted(peers):
        r = peers[peer]
        rows.append([
            str(peer),
            str(r["suspects"]),
            str(r["opens"]),
            str(r["reopens"]),
            str(r["closes"]),
            f"{r['max_phi']:.2f}",
            r["state"] if r["state"] != "closed" else "",
        ])
    if not rows:
        return "(no peer ever crossed the suspect threshold)"
    return format_table(headers, rows)


def partition_table(streams):
    headers = ["episode", "components", "length", "healed"]
    begun = {e["episode"]: e for e in streams["partition_begin"]}
    ended = {e["episode"] for e in streams["partition_end"]}
    rows = []
    for episode in sorted(begun):
        e = begun[episode]
        rows.append([
            str(episode),
            str(e["components"]),
            str(e["length"]),
            "yes" if episode in ended else "NO (still split at trace end)",
        ])
    if not rows:
        return "(no partition episodes in this trace)"
    return format_table(headers, rows)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jsonl", required=True,
                        help="JSON Lines trace of a --health run")
    parser.add_argument("--gate", action="store_true",
                        help="exit 1 when the flap rate exceeds "
                             "--max-flap-rate")
    parser.add_argument("--max-flap-rate", type=float, default=0.5,
                        help="allowed re-opens per breaker opening under "
                             "--gate (default 0.5)")
    args = parser.parse_args()

    try:
        streams = collect(args.jsonl)
    except (OSError, ValueError) as e:
        print(f"FAIL: {e}", file=sys.stderr)
        return 1
    total = sum(len(v) for v in streams.values())
    if total == 0:
        print(f"FAIL: {args.jsonl}: no peer-health events (was the run "
              f"started with --health, under faults?)", file=sys.stderr)
        return 1

    peers = per_peer(streams)
    print(f"== peer health ({total} event(s) in {args.jsonl}) ==")
    print(breaker_table(peers))
    print(f"\n== partition episodes ==")
    print(partition_table(streams))

    opens = sum(r["opens"] for r in peers.values())
    reopens = sum(r["reopens"] for r in peers.values())
    closes = sum(r["closes"] for r in peers.values())
    quarantined = sum(1 for r in peers.values() if r["state"] == "open")
    flap = reopens / (opens + reopens) if opens + reopens > 0 else 0.0
    print(f"\nsummary: {len(peers)} peer(s) tracked, "
          f"{opens} open(s), {reopens} re-open(s), {closes} close(s), "
          f"flap rate {flap:.1%}, {quarantined} still quarantined, "
          f"{len(streams['partition_begin'])} partition episode(s)")

    if not args.gate:
        return 0
    if flap > args.max_flap_rate:
        print(f"\nGATE FAIL: flap rate {flap:.1%} exceeds "
              f"{args.max_flap_rate:.1%} — breakers are bouncing between "
              f"open and half-open instead of holding", file=sys.stderr)
        return 1
    print(f"\ngate OK: flap rate {flap:.1%} within "
          f"{args.max_flap_rate:.1%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
