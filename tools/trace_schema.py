"""Shared schema tables for the Digest observability exports.

One source of truth for the constants the tools/ scripts previously
each carried their own copy of: the JSONL/Chrome trace-event schemas
(pinned by src/obs/exporters.cc), the wall-clock profiling section
(src/prof/), and the bench_suite JSON layout (bench/bench_suite.cc,
gated by tools/bench_compare.py). Adding an event to the C++ tracer
means adding its row to EVENT_SCHEMA here — check_trace.py rejects
unknown events, so a missing row fails CI loudly.

Stdlib only; imported by check_trace.py, audit_report.py,
bench_compare.py, and diag_report.py (all run as `python3 tools/X.py`,
which puts tools/ on sys.path).
"""

import json

# event name -> required payload fields (beyond seq/t/event).
EVENT_SCHEMA = {
    "run_begin": {"label"},
    "tick": {"snapshot_executed", "degraded", "result_updated", "reported",
             "ci_halfwidth"},
    "gap_predicted": {"gap", "next_tick", "poly_order", "predicted_drift",
                      "strict"},
    "snapshot": {"value", "ci_halfwidth", "total_samples", "fresh_samples",
                 "retained_samples", "degraded"},
    "snapshot_skipped": {"next_snapshot_tick"},
    "sample_budget": {"repeated", "rho_hat", "sigma_hat", "planned_total",
                      "planned_retained"},
    "ci_widened": {"from", "to"},
    "degraded_fallback": {"retained_pool"},
    "walk_batch": {"agents", "warm", "cold_steps", "warm_steps", "budget"},
    "walk_batch_done": {"samples", "attempts", "retries", "losses", "drops",
                        "stalled_steps", "hedges", "hedge_wins"},
    "hop_budget_exhausted": {"attempts", "budget"},
    "agent_restart": {"agent_index"},
    "fault_loss": {"from", "to"},
    "fault_stall": {"stalled_steps"},
    "supervisor_state": {"from", "to", "outcome", "consecutive"},
    "partial_snapshot": {"collected", "planned", "ci_halfwidth"},
    "walk_hedged": {"agent_index", "attempts", "threshold"},
    "checkpoint": {"bytes", "last_tick"},
    "restore": {"bytes", "last_tick"},
    # Multi-query node runtime (src/core/digest_node.cc): >= 2 due
    # queries split one shared walk batch this tick. Unlaned — the
    # shared pool belongs to the node, not to any one tenant.
    "snapshot_coalesced": {"queries", "shared_samples",
                           "consumed_samples"},
    # Precision-audit events (src/audit/, docs/OBSERVABILITY.md "audit").
    "audit_coverage": {"estimate", "truth", "ci_halfwidth", "hit", "cause",
                       "occasions", "misses"},
    "audit_budget": {"burn", "remaining", "occasions", "misses"},
    "audit_drift": {"detector", "ewma", "cusum_pos", "cusum_neg",
                    "threshold", "streak", "flip"},
    "audit_slo": {"label", "p", "epsilon", "delta", "occasions", "hits",
                  "misses", "coverage", "coverage_floor", "coverage_ok",
                  "delta_ticks", "delta_misses", "delta_compliance",
                  "budget_burn", "budget_remaining"},
    # Sampler-introspection events (src/diag/, one set per walk batch;
    # docs/OBSERVABILITY.md "Sampler diagnostics").
    "walk_mixing": {"walks", "steps", "lag1_autocorr", "ess", "rhat"},
    "stationary_gap": {"tv_distance", "chi_square", "live_peers", "visits",
                       "dropped_dead_visits", "breach"},
    "peer_load": {"peers", "links", "hot_peer", "max_load", "mean_load",
                  "hot"},
    "acceptance_rate": {"proposals", "accepted", "rate"},
    # Peer-health events (src/net/peer_health, net/fault_plan partition
    # episodes; docs/OBSERVABILITY.md "Peer health & partitions").
    "peer_suspect": {"peer", "phi", "failures"},
    "breaker_transition": {"peer", "from", "to", "phi"},
    "partition_begin": {"episode", "components", "length"},
    "partition_end": {"episode"},
}

# Walk-scoped events that may carry the optional `lane` field: the walk
# index the parallel executor stamps on per-walk events at merge time
# (src/exec/, DESIGN.md "Parallel execution & determinism model").
# Deterministic — a lane is a walk, never an OS thread — and absent
# entirely on serial (num_threads=0) traces.
LANE_EVENTS = {"fault_loss", "agent_restart", "walk_hedged"}

# Engine- and audit-level events that may carry a `lane` field holding a
# QueryId (>= 1) instead of a walk index: a DigestNode hands each tenant
# engine a per-query lane view of the node's tracer
# (obs::LaneTracer), so one trace carries every concurrent query's
# events separably. Shared-operator events (walk_*, diag, health) stay
# unlaned, as does snapshot_coalesced. Absent entirely on single-engine
# traces.
QUERY_LANE_EVENTS = {
    "tick", "snapshot", "snapshot_skipped", "gap_predicted",
    "sample_budget", "partial_snapshot", "ci_widened",
    "degraded_fallback", "supervisor_state", "checkpoint", "restore",
    "audit_coverage", "audit_budget", "audit_drift", "audit_slo",
}

# Events the Chrome exporter renders as slices nested inside tick spans.
NESTED_SLICE_EVENTS = {
    "walk_batch", "walk_batch_done", "hop_budget_exhausted",
    "agent_restart", "fault_loss", "fault_stall", "walk_hedged",
    "walk_mixing", "stationary_gap", "peer_load", "acceptance_rate",
    "peer_suspect", "breaker_transition",
}

TICK_SPAN_US = 1000  # One simulated tick = 1000 us of trace time.

# Wall-clock profiling (src/prof/): phase names are stable API
# (prof::PhaseName), pinned here like the event names above.
PROF_PHASES = {
    "engine_tick", "extrapolator_fit", "extrapolator_predict",
    "estimator_evaluate", "walk_batch", "walk_advance", "fault_draw",
}
PROF_STAT_FIELDS = {"calls", "total_ns", "min_ns", "max_ns", "items"}
WALL_PROCESS_NAME = "wall-clock profiler"

# ----------------------------------------------------------------------
# bench_suite JSON layout (bench/bench_suite.cc, results/README.md).

SUITE_SCHEMA = "digest-bench-suite-v1"

COUNT_FIELDS = ("ticks", "snapshots", "total_samples", "messages",
                "degraded_ticks", "walk_batches", "walk_hops")

# An audited baseline (bench_suite --audit) carries the precision
# auditor's run summary in each scenario's `extra.audit` object; these
# are its deterministic accuracy fields, exact-compared when the
# configs match.
AUDIT_EXACT_FIELDS = ("occasions", "hits", "misses", "delta_ticks",
                      "delta_misses", "coverage", "attribution")

# A diagnosed baseline (bench_suite --diag) carries the sampler
# diagnostics summary in each scenario's `extra.diag` object
# (diag::SamplerDiag::SummaryJson). The deterministic count fields are
# exact-compared; the floating summaries (tv/ess/rhat/...) ride along
# but only the counts gate.
DIAG_EXACT_FIELDS = ("batches", "walks", "steps", "live_visits",
                     "dropped_dead_visits", "proposals", "accepted",
                     "breaches", "hot_batches")

# A health-monitored baseline (bench_suite --health) carries the peer
# health monitor's run summary in each scenario's `extra.health` object
# (PeerHealthMonitor::SummaryJson). The integer counters are
# exact-compared when the configs match; the floating ratios
# (flap_rate, quarantine_fraction) ride along but only the counts gate.
HEALTH_EXACT_FIELDS = ("batches", "breaker_transitions", "closes",
                       "failures", "opens", "outcomes", "peers_tracked",
                       "population", "quarantined", "reopens", "successes",
                       "suspects")

# The parallel-executor scenario additionally commits a speedup curve in
# its `extra` object (BENCH_parallel_rpt_mcmc.json).
PARALLEL_EXTRA_FIELDS = ("threads", "wall_ms", "speedup", "speedup_at_4",
                         "host_cores", "bit_identical_across_counts")

# The partition-recovery scenario (partition_rpt_mcmc) commits the
# quarantine-aware vs breakers-ablated coverage comparison in its
# `extra` object: the robustness headline bench_compare.py gates
# structurally (presence + sane ranges; the strict aware-vs-ablated
# acceptance property is test-enforced at pinned parameters in
# tests/partition_test.cc, not here, to keep arbitrary-scale baselines
# from flaking).
PARTITION_EXTRA_FIELDS = ("coverage_aware", "coverage_ablated",
                          "coverage_floor", "aware_above_floor",
                          "ablated_breached", "breaker_opens",
                          "breaker_reopens", "flap_rate",
                          "degraded_ticks_aware", "degraded_ticks_ablated")

# The multi-query node scenario (multiquery_rpt_mcmc) commits the
# marginal-message-per-added-query curves for both node modes
# (coalesced snapshot scheduling vs the warm-pool-only ablation) in
# its `extra` object. ratio_q8 — the 4->8 marginal of the coalesced
# mode over the ablation's — is the sharing headline, gated at
# MULTIQUERY_MAX_RATIO_Q8; coverage_ok_all asserts every tenant's
# (ε, p) coverage floor held under the shared sample pool (per-query
# auditors over the 8-query coalesced run).
MULTIQUERY_EXTRA_FIELDS = ("queries", "messages_coalesced",
                           "messages_warm_pool", "marginal_coalesced",
                           "marginal_warm_pool", "ratio_q8",
                           "coalesced_ticks_q8", "coverage_ok_all")
MULTIQUERY_MAX_RATIO_Q8 = 0.6


def load_jsonl_events(path, names):
    """Returns the payload objects of the named events in a JSONL trace,
    in emission order. `names` is a set of event names. Raises
    ValueError on malformed JSONL."""
    events = []
    with open(path, "r", encoding="utf-8") as f:
        for line_no, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as e:
                raise ValueError(f"{path}:{line_no}: invalid JSON: {e}")
            if obj.get("event") in names:
                events.append(obj)
    return events
