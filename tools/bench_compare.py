#!/usr/bin/env python3
"""Compare a bench_suite run against a baseline and gate on regressions.

Both inputs are BENCH_SUITE.json files written by `bench_suite`
(schema digest-bench-suite-v1; see results/README.md). Two kinds of
check, in decreasing strictness:

  * Work counts (ticks, snapshots, samples, messages, walk batches/hops,
    degraded ticks) are deterministic per (seed, scale, quick): they
    must match the baseline EXACTLY when the configs match. A count
    mismatch means the engine now does different work — a behavioral
    change, flagged regardless of timing. If the configs differ (e.g. a
    --quick run against a full-scale baseline), counts are skipped with
    a note.

  * Wall-clock medians are compared with a noise-aware threshold: a
    scenario regresses when

        current_median > baseline_median * max_slowdown + noise

    with noise = mad_k * max(baseline_mad, current_mad, abs_floor_ms).
    MAD is the suite's per-run dispersion estimate; the absolute floor
    keeps microsecond-scale scenarios from tripping on scheduler jitter.
    Timing checks can be disabled wholesale with --ignore-timing (for
    cross-machine comparisons where only the counts are meaningful).

When the baseline was produced with --audit, each scenario's
extra.audit precision ledger is gated too: coverage_ok must not flip
from true to false, and the deterministic accuracy fields
(occasions/hits/misses/coverage/attribution/...) must match exactly
when the configs match. See docs/OBSERVABILITY.md "Precision audit".

Exit status 0 iff no regression. Stdlib only.

Typical use:

    ./build/bench/bench_suite --quick --out-dir=/tmp/bench
    python3 tools/bench_compare.py --baseline BENCH_SUITE.json \
        --current /tmp/bench/BENCH_SUITE.json

Refresh the committed baseline by re-running bench_suite with the
baseline's own config (see results/README.md) and committing the
resulting JSON.
"""

import argparse
import json
import sys

# Schema tables shared with check_trace.py / audit_report.py /
# diag_report.py live in trace_schema.py — one source of truth for the
# bench_suite JSON layout this script gates.
#
# Audit gate: a scenario whose baseline met its coverage floor
# (coverage_ok true) must still meet it — a flip to false is an
# accuracy regression, flagged even when the configs differ; when the
# configs match, AUDIT_EXACT_FIELDS must match the baseline EXACTLY,
# same rationale as the work counts. Diag gate: same exact-match rule
# for DIAG_EXACT_FIELDS (the deterministic walk/visit/breach counts).
# Health gate: same exact-match rule for HEALTH_EXACT_FIELDS (the
# deterministic breaker/quarantine counters of a --health baseline),
# plus a structural check of the partition-recovery scenario's
# aware-vs-ablated coverage headline (PARTITION_EXTRA_FIELDS).
#
# Parallel scenario: PARALLEL_EXTRA_FIELDS are schema-checked, and the
# in-suite cross-thread-count determinism verdict is a hard gate: a run
# that was not bit-identical across 1/2/4/8 threads fails the
# comparison no matter how fast it was.
from trace_schema import (AUDIT_EXACT_FIELDS, COUNT_FIELDS,
                          DIAG_EXACT_FIELDS, HEALTH_EXACT_FIELDS,
                          MULTIQUERY_EXTRA_FIELDS, MULTIQUERY_MAX_RATIO_Q8,
                          PARALLEL_EXTRA_FIELDS, PARTITION_EXTRA_FIELDS,
                          SUITE_SCHEMA)


def check_parallel_extra(name, scenario, failures):
    extra = scenario.get("extra")
    if not isinstance(extra, dict):
        failures.append(f"{name}: missing 'extra' speedup-curve object")
        return
    for field in PARALLEL_EXTRA_FIELDS:
        if field not in extra:
            failures.append(f"{name}: extra missing '{field}'")
    if extra.get("bit_identical_across_counts") is not True:
        failures.append(f"{name}: run was NOT bit-identical across thread "
                        f"counts")
    threads = extra.get("threads")
    curve = extra.get("speedup")
    if isinstance(threads, list) and isinstance(curve, list) and \
            len(threads) != len(curve):
        failures.append(f"{name}: speedup curve length {len(curve)} != "
                        f"thread count list length {len(threads)}")


def extra_section(name, scenario, key, side, failures):
    """Returns scenario.extra[key] as a dict, or None with one clear
    failure line when the section is absent or malformed — never a
    KeyError traceback."""
    extra = scenario.get("extra")
    if not isinstance(extra, dict) or key not in extra:
        flag = {"audit": "--audit", "diag": "--diag",
                "health": "--health"}.get(key, f"--{key}")
        failures.append(
            f"{name}: {side} run has no extra.{key} section (was "
            f"bench_suite run with {flag}?)")
        return None
    section = extra[key]
    if not isinstance(section, dict):
        failures.append(f"{name}: {side} extra.{key} is not an object")
        return None
    return section


def check_audit_extra(name, base_scenario, cur_scenario, counts_comparable,
                      failures):
    base_audit = extra_section(name, base_scenario, "audit", "baseline",
                               failures)
    cur_audit = extra_section(name, cur_scenario, "audit", "current",
                              failures)
    if base_audit is None or cur_audit is None:
        return
    if base_audit.get("coverage_ok") is True and \
            cur_audit.get("coverage_ok") is not True:
        failures.append(
            f"{name}: coverage_ok flipped true -> false (coverage "
            f"{cur_audit.get('coverage')} vs floor "
            f"{cur_audit.get('coverage_floor')}) — accuracy regression")
    if counts_comparable:
        for field in AUDIT_EXACT_FIELDS:
            bv = base_audit.get(field)
            cv = cur_audit.get(field)
            if bv != cv:
                failures.append(
                    f"{name}: audit '{field}' changed {bv} -> {cv} "
                    f"(deterministic accuracy ledger differs)")


def check_diag_extra(name, base_scenario, cur_scenario, counts_comparable,
                     failures):
    base_diag = extra_section(name, base_scenario, "diag", "baseline",
                              failures)
    cur_diag = extra_section(name, cur_scenario, "diag", "current",
                             failures)
    if base_diag is None or cur_diag is None or not counts_comparable:
        return
    for field in DIAG_EXACT_FIELDS:
        bv = base_diag.get(field)
        cv = cur_diag.get(field)
        if bv != cv:
            failures.append(
                f"{name}: diag '{field}' changed {bv} -> {cv} "
                f"(deterministic sampler diagnostics differ)")


def check_health_extra(name, base_scenario, cur_scenario, counts_comparable,
                       failures):
    base_health = extra_section(name, base_scenario, "health", "baseline",
                                failures)
    cur_health = extra_section(name, cur_scenario, "health", "current",
                               failures)
    if base_health is None or cur_health is None or not counts_comparable:
        return
    for field in HEALTH_EXACT_FIELDS:
        bv = base_health.get(field)
        cv = cur_health.get(field)
        if bv != cv:
            failures.append(
                f"{name}: health '{field}' changed {bv} -> {cv} "
                f"(deterministic peer-health counters differ)")


def check_partition_extra(name, scenario, failures):
    """Structural gate on the partition-recovery scenario's headline:
    the aware-vs-ablated coverage comparison must be present with sane
    values, and the quarantine-aware run must not flap. The strict
    acceptance property (aware above the binomial floor, ablated
    breaching it) is enforced at pinned parameters by
    tests/partition_test.cc — not re-gated here, where scale/seed are
    arbitrary."""
    extra = scenario.get("extra")
    if not isinstance(extra, dict):
        failures.append(f"{name}: missing 'extra' partition-recovery object")
        return
    for field in PARTITION_EXTRA_FIELDS:
        if field not in extra:
            failures.append(f"{name}: extra missing '{field}'")
    for field in ("coverage_aware", "coverage_ablated", "coverage_floor",
                  "flap_rate"):
        v = extra.get(field)
        if isinstance(v, (int, float)) and not 0.0 <= v <= 1.0:
            failures.append(f"{name}: extra '{field}' = {v} outside [0, 1]")
    flap = extra.get("flap_rate")
    if isinstance(flap, (int, float)) and flap > 0.5:
        failures.append(
            f"{name}: flap_rate {flap} exceeds 0.5 — breakers bouncing "
            f"between open and half-open instead of holding")


def check_multiquery_extra(name, scenario, failures):
    """Gate on the multi-query node scenario's sharing headline: the
    marginal message cost of the 8th concurrent query under coalesced
    snapshot scheduling must stay at or below MULTIQUERY_MAX_RATIO_Q8
    of the warm-pool-only ablation's marginal cost, and every tenant's
    (ε, p) coverage floor must have held under the shared sample pool.
    Both are deterministic per (seed, scale), so they gate on the
    current run alone — no baseline comparison needed."""
    extra = scenario.get("extra")
    if not isinstance(extra, dict):
        failures.append(f"{name}: missing 'extra' multi-query object")
        return
    for field in MULTIQUERY_EXTRA_FIELDS:
        if field not in extra:
            failures.append(f"{name}: extra missing '{field}'")
    ratio = extra.get("ratio_q8")
    if isinstance(ratio, (int, float)):
        if not 0.0 <= ratio <= MULTIQUERY_MAX_RATIO_Q8:
            failures.append(
                f"{name}: ratio_q8 {ratio} outside "
                f"[0, {MULTIQUERY_MAX_RATIO_Q8}] — the 8th query's "
                f"marginal cost under coalescing is no longer well "
                f"below the warm-pool ablation's")
    else:
        failures.append(f"{name}: extra 'ratio_q8' is not a number")
    if extra.get("coverage_ok_all") is not True:
        failures.append(
            f"{name}: coverage_ok_all is not true — some tenant's "
            f"(ε, p) coverage floor broke under the shared sample pool")
    for key in ("marginal_coalesced", "marginal_warm_pool"):
        curve = extra.get(key)
        queries = extra.get("queries")
        if isinstance(curve, list) and isinstance(queries, list) and \
                len(curve) != len(queries) - 1:
            failures.append(
                f"{name}: {key} length {len(curve)} != "
                f"{len(queries) - 1} marginal steps")


def load_suite(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != SUITE_SCHEMA:
        raise SystemExit(f"{path}: schema {doc.get('schema')!r} is not "
                         f"{SUITE_SCHEMA!r}")
    if "scenarios" not in doc or not isinstance(doc["scenarios"], dict):
        raise SystemExit(f"{path}: missing scenarios object")
    return doc


def configs_comparable(base, cur):
    """Counts are only exact-comparable when the workload is identical."""
    bk, ck = base.get("config", {}), cur.get("config", {})
    return all(bk.get(k) == ck.get(k) for k in ("scale", "seed", "quick"))


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--baseline", required=True,
                        help="baseline BENCH_SUITE.json")
    parser.add_argument("--current", required=True,
                        help="candidate BENCH_SUITE.json")
    parser.add_argument("--max-slowdown", type=float, default=1.5,
                        help="allowed median wall-time ratio before noise "
                             "(default 1.5; use a larger value across "
                             "machines)")
    parser.add_argument("--mad-k", type=float, default=6.0,
                        help="noise multiplier on the larger MAD "
                             "(default 6)")
    parser.add_argument("--abs-floor-ms", type=float, default=0.5,
                        help="minimum noise term in ms (default 0.5)")
    parser.add_argument("--ignore-timing", action="store_true",
                        help="check only the deterministic work counts")
    args = parser.parse_args()

    base = load_suite(args.baseline)
    cur = load_suite(args.current)
    counts_comparable = configs_comparable(base, cur)
    if not counts_comparable:
        print("note: baseline and current configs differ "
              f"({base.get('config')} vs {cur.get('config')}); "
              "skipping exact count comparison")

    failures = []
    rows = []
    for name, b in sorted(base["scenarios"].items()):
        c = cur["scenarios"].get(name)
        if c is None:
            failures.append(f"{name}: missing from current run")
            continue

        if counts_comparable:
            for field in COUNT_FIELDS:
                bv = b.get("counts", {}).get(field)
                cv = c.get("counts", {}).get(field)
                if bv != cv:
                    failures.append(
                        f"{name}: count '{field}' changed "
                        f"{bv} -> {cv} (deterministic work differs)")

        if isinstance(b.get("extra"), dict) and "audit" in b["extra"]:
            check_audit_extra(name, b, c, counts_comparable, failures)

        if isinstance(b.get("extra"), dict) and "diag" in b["extra"]:
            check_diag_extra(name, b, c, counts_comparable, failures)

        if isinstance(b.get("extra"), dict) and "health" in b["extra"]:
            check_health_extra(name, b, c, counts_comparable, failures)

        if isinstance(b.get("extra"), dict) and \
                "coverage_aware" in b["extra"]:
            check_partition_extra(name, c, failures)

        if isinstance(b.get("extra"), dict) and "ratio_q8" in b["extra"]:
            check_multiquery_extra(name, c, failures)
            cx = c.get("extra", {})
            if isinstance(cx, dict) and "ratio_q8" in cx:
                print(f"note: {name} ratio_q8 = {cx['ratio_q8']} "
                      f"(baseline {b['extra'].get('ratio_q8')}; "
                      f"gate <= {MULTIQUERY_MAX_RATIO_Q8})")

        if isinstance(b.get("extra"), dict) and \
                "bit_identical_across_counts" in b["extra"]:
            check_parallel_extra(name, c, failures)
            cx = c.get("extra", {})
            if isinstance(cx, dict) and "speedup_at_4" in cx:
                print(f"note: {name} speedup@4 = {cx['speedup_at_4']} "
                      f"(host_cores={cx.get('host_cores')}; baseline "
                      f"{b['extra'].get('speedup_at_4')} on "
                      f"{b['extra'].get('host_cores')} cores)")

        b_med = b["wall_ms"]["median"]
        c_med = c["wall_ms"]["median"]
        noise = args.mad_k * max(b["wall_ms"]["mad"], c["wall_ms"]["mad"],
                                 args.abs_floor_ms)
        limit = b_med * args.max_slowdown + noise
        ratio = c_med / b_med if b_med > 0 else float("inf")
        verdict = "ok"
        if not args.ignore_timing and c_med > limit:
            verdict = "REGRESSED"
            failures.append(
                f"{name}: median {c_med:.3f} ms vs baseline "
                f"{b_med:.3f} ms (ratio {ratio:.2f}x, limit "
                f"{limit:.3f} ms = {args.max_slowdown}x + noise "
                f"{noise:.3f} ms)")
        rows.append((name, b_med, c_med, ratio, limit, verdict))

    extra = sorted(set(cur["scenarios"]) - set(base["scenarios"]))
    if extra:
        print(f"note: scenarios not in baseline (unchecked): "
              f"{', '.join(extra)}")

    if rows:
        width = max(len(r[0]) for r in rows)
        print(f"{'scenario':<{width}}  {'base ms':>10}  {'cur ms':>10}  "
              f"{'ratio':>7}  {'limit ms':>10}  verdict")
        for name, b_med, c_med, ratio, limit, verdict in rows:
            print(f"{name:<{width}}  {b_med:>10.3f}  {c_med:>10.3f}  "
                  f"{ratio:>6.2f}x  {limit:>10.3f}  {verdict}")

    if failures:
        print(f"\nFAIL: {len(failures)} regression(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    checked = "counts+timing" if counts_comparable else "timing"
    if args.ignore_timing:
        checked = "counts" if counts_comparable else "nothing"
    print(f"\nOK: {len(rows)} scenario(s) within thresholds ({checked} "
          f"checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
